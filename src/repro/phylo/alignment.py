"""Multiple sequence alignments and site-pattern compression.

An :class:`Alignment` stores a set of equal-length DNA sequences as a
``(n_taxa, n_sites)`` matrix of 4-bit ambiguity masks.  Before likelihood
computation the alignment is *compressed*: identical columns (site
patterns) are merged and carry an integer weight.  This is the single most
important algorithmic optimization in any ML code — the ``42_SC`` dataset
of the paper has 1167 sites but only on the order of 250 distinct
patterns, so every likelihood loop shrinks by ~4.7x.

Bootstrap replicates are represented as new *weight vectors* over the same
patterns (resampling sites with replacement never creates new patterns),
exactly as RAxML implements non-parametric bootstrapping.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from . import dna

__all__ = [
    "Alignment",
    "AlignmentError",
    "PatternAlignment",
    "parse_alignment",
    "parse_fasta",
    "parse_phylip",
]


class AlignmentError(ValueError):
    """A malformed alignment, with a stable machine-readable ``code``.

    Subclasses :class:`ValueError` so existing callers that catch the
    broad class keep working; the service layer catches this type at
    admission and maps ``code`` onto its HTTP error vocabulary.  Codes
    are part of the API surface — add, never rename.

    Known codes: ``empty``, ``empty_sequence``, ``length_mismatch``,
    ``illegal_character``, ``duplicate_taxon``, ``fasta_empty_name``,
    ``fasta_data_before_header``, ``phylip_header``,
    ``phylip_truncated``, ``phylip_line``, ``phylip_length``,
    ``parse_error`` (the catch-all: a parser bug leaked an untyped
    exception and the hardened entry point contained it).
    """

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)


@dataclass
class Alignment:
    """A multiple sequence alignment of DNA data.

    Parameters
    ----------
    taxa:
        Taxon names, unique, in row order.
    data:
        ``(n_taxa, n_sites)`` uint8 matrix of 4-bit ambiguity masks.
    """

    taxa: List[str]
    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint8)
        if self.data.ndim != 2:
            raise ValueError("alignment data must be 2-D (taxa x sites)")
        if len(self.taxa) != self.data.shape[0]:
            raise ValueError(
                f"{len(self.taxa)} taxon names for {self.data.shape[0]} rows"
            )
        if len(set(self.taxa)) != len(self.taxa):
            raise ValueError("duplicate taxon names")
        if self.data.size and (
            (self.data == 0).any() or (self.data > dna.GAP_MASK).any()
        ):
            raise ValueError("alignment contains invalid state masks")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_sequences(cls, named_sequences: Dict[str, str]) -> "Alignment":
        """Build an alignment from a ``{name: sequence}`` mapping."""
        taxa = list(named_sequences)
        return cls(taxa, dna.mask_matrix(named_sequences.values()))

    @classmethod
    def from_fasta(cls, source: Union[str, os.PathLike]) -> "Alignment":
        """Read a FASTA file (path or raw text)."""
        text = _read_source(source)
        return cls.from_sequences(parse_fasta(text))

    @classmethod
    def from_phylip(cls, source: Union[str, os.PathLike]) -> "Alignment":
        """Read a sequential/relaxed PHYLIP file (path or raw text)."""
        text = _read_source(source)
        return cls.from_sequences(parse_phylip(text))

    # -- basic properties --------------------------------------------------

    @property
    def n_taxa(self) -> int:
        return self.data.shape[0]

    @property
    def n_sites(self) -> int:
        return self.data.shape[1]

    def sequence(self, taxon: str) -> str:
        """Return the IUPAC string for *taxon*."""
        return dna.decode_mask(self.data[self.taxa.index(taxon)])

    # -- serialization -----------------------------------------------------

    def to_fasta(self) -> str:
        out = io.StringIO()
        for i, name in enumerate(self.taxa):
            out.write(f">{name}\n{dna.decode_mask(self.data[i])}\n")
        return out.getvalue()

    def to_phylip(self) -> str:
        out = io.StringIO()
        out.write(f"{self.n_taxa} {self.n_sites}\n")
        width = max((len(t) for t in self.taxa), default=0) + 2
        for i, name in enumerate(self.taxa):
            out.write(name.ljust(width) + dna.decode_mask(self.data[i]) + "\n")
        return out.getvalue()

    # -- analysis ----------------------------------------------------------

    def base_frequencies(self) -> np.ndarray:
        """Empirical base frequencies (ambiguity mass split uniformly).

        Each character contributes total weight 1, divided equally among the
        states its mask permits, so gaps/N add 0.25 to every state.  The
        result sums to 1.
        """
        rows = dna.TIP_PARTIAL_ROWS[self.data]  # (taxa, sites, 4)
        per_char = rows / rows.sum(axis=-1, keepdims=True)
        freqs = per_char.sum(axis=(0, 1))
        total = freqs.sum()
        if total == 0:
            return np.full(dna.NUM_STATES, 0.25)
        return freqs / total

    def compress(self) -> "PatternAlignment":
        """Merge identical columns into weighted site patterns."""
        if self.n_sites == 0:
            raise ValueError("cannot compress an empty alignment")
        columns = self.data.T  # (sites, taxa)
        patterns, site_to_pattern, counts = np.unique(
            columns, axis=0, return_inverse=True, return_counts=True
        )
        return PatternAlignment(
            taxa=list(self.taxa),
            patterns=np.ascontiguousarray(patterns.T),
            weights=counts.astype(np.float64),
            site_to_pattern=site_to_pattern.astype(np.intp),
            n_sites=self.n_sites,
        )


@dataclass
class PatternAlignment:
    """A pattern-compressed alignment ready for likelihood computation.

    Attributes
    ----------
    taxa:
        Taxon names in row order.
    patterns:
        ``(n_taxa, n_patterns)`` uint8 mask matrix of distinct columns.
    weights:
        Per-pattern multiplicities (floats: bootstrap replicates re-weight).
    site_to_pattern:
        For each original site, the index of its pattern.
    n_sites:
        Length of the uncompressed alignment.
    """

    taxa: List[str]
    patterns: np.ndarray
    weights: np.ndarray
    site_to_pattern: np.ndarray
    n_sites: int
    _tip_partial_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.patterns = np.asarray(self.patterns, dtype=np.uint8)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.patterns.shape[1] != self.weights.shape[0]:
            raise ValueError("weights length must equal number of patterns")
        if self.weights.sum() and abs(self.weights.sum() - self.n_sites) > 1e-9:
            # Bootstrap weight vectors must redistribute exactly n_sites.
            raise ValueError("pattern weights must sum to the site count")

    @property
    def n_taxa(self) -> int:
        return self.patterns.shape[0]

    @property
    def n_patterns(self) -> int:
        return self.patterns.shape[1]

    def taxon_index(self, name: str) -> int:
        return self.taxa.index(name)

    def tip_partials(self, taxon_index: int) -> np.ndarray:
        """Tip conditional-likelihood rows, ``(n_patterns, 4)``, cached."""
        cached = self._tip_partial_cache.get(taxon_index)
        if cached is None:
            cached = dna.tip_partials(self.patterns[taxon_index])
            cached.setflags(write=False)
            self._tip_partial_cache[taxon_index] = cached
        return cached

    def tip_is_unambiguous(self, taxon_index: int) -> bool:
        """True if the taxon row holds only fully determined bases."""
        row = self.patterns[taxon_index]
        return bool(np.isin(row, (1, 2, 4, 8)).all())

    def parsimony_masks(self, taxon_index: int) -> np.ndarray:
        """Per-pattern state-set bitmasks for Fitch parsimony.

        For DNA the stored 4-bit ambiguity masks already are the state
        sets; protein alignments override this with 20-bit masks.
        """
        return self.patterns[taxon_index]

    def base_frequencies(self) -> np.ndarray:
        """Empirical base frequencies honouring the pattern weights."""
        rows = dna.TIP_PARTIAL_ROWS[self.patterns]  # (taxa, patterns, 4)
        per_char = rows / rows.sum(axis=-1, keepdims=True)
        freqs = (per_char * self.weights[None, :, None]).sum(axis=(0, 1))
        total = freqs.sum()
        if total == 0:
            return np.full(dna.NUM_STATES, 0.25)
        return freqs / total

    def expand_to_sites(self, per_pattern: np.ndarray) -> np.ndarray:
        """Map a per-pattern vector back to per-site values."""
        return np.asarray(per_pattern)[..., self.site_to_pattern]

    # -- bootstrapping -----------------------------------------------------

    def bootstrap_weights(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a non-parametric bootstrap weight vector.

        Sites are resampled with replacement; the count of draws landing on
        each pattern becomes its new weight.  The result sums to
        ``n_sites`` and typically zeroes out 30-40 % of patterns (which is
        why the paper notes 10-20 % of columns effectively re-weighted).
        """
        probabilities = self.weights / self.weights.sum()
        return rng.multinomial(self.n_sites, probabilities).astype(np.float64)

    def with_weights(self, weights: np.ndarray) -> "PatternAlignment":
        """A view of this alignment carrying different pattern weights."""
        return PatternAlignment(
            taxa=self.taxa,
            patterns=self.patterns,
            weights=np.asarray(weights, dtype=np.float64),
            site_to_pattern=self.site_to_pattern,
            n_sites=self.n_sites,
            _tip_partial_cache=self._tip_partial_cache,
        )

    def bootstrap_replicate(self, rng: np.random.Generator) -> "PatternAlignment":
        """Convenience: a replicate alignment with bootstrap weights."""
        return self.with_weights(self.bootstrap_weights(rng))


# -- parsers ---------------------------------------------------------------


def parse_fasta(text: str) -> Dict[str, str]:
    """Parse FASTA text into an ordered ``{name: sequence}`` mapping."""
    sequences: Dict[str, str] = {}
    name: Optional[str] = None
    chunks: List[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                sequences[name] = "".join(chunks)
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise AlignmentError("fasta_empty_name",
                                     "FASTA record with empty name")
            if name in sequences:
                raise AlignmentError("duplicate_taxon",
                                     f"duplicate FASTA record {name!r}")
            chunks = []
        else:
            if name is None:
                raise AlignmentError("fasta_data_before_header",
                                     "FASTA sequence data before first header")
            chunks.append(line)
    if name is not None:
        sequences[name] = "".join(chunks)
    if not sequences:
        raise AlignmentError("empty", "no FASTA records found")
    return sequences


def parse_phylip(text: str) -> Dict[str, str]:
    """Parse sequential relaxed-PHYLIP text (name, whitespace, sequence)."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise AlignmentError("empty", "empty PHYLIP input")
    header = lines[0].split()
    if len(header) != 2:
        raise AlignmentError("phylip_header",
                             "PHYLIP header must be 'n_taxa n_sites'")
    try:
        n_taxa, n_sites = int(header[0]), int(header[1])
    except ValueError:
        raise AlignmentError(
            "phylip_header",
            f"non-numeric PHYLIP header: {lines[0].strip()!r}"
        ) from None
    if n_taxa < 1 or n_sites < 1:
        raise AlignmentError(
            "phylip_header",
            f"PHYLIP header counts must be positive, got {n_taxa} {n_sites}"
        )
    if len(lines) - 1 < n_taxa:
        raise AlignmentError(
            "phylip_truncated",
            f"expected {n_taxa} sequence lines, got {len(lines) - 1}"
        )
    sequences: Dict[str, str] = {}
    for line in lines[1 : 1 + n_taxa]:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise AlignmentError("phylip_line",
                                 f"malformed PHYLIP line: {line!r}")
        name, seq = parts[0], parts[1].replace(" ", "")
        if len(seq) != n_sites:
            raise AlignmentError(
                "phylip_length",
                f"taxon {name!r} has {len(seq)} sites, header says {n_sites}"
            )
        if name in sequences:
            raise AlignmentError("duplicate_taxon",
                                 f"duplicate taxon {name!r}")
        sequences[name] = seq
    return sequences


def parse_alignment(text: str, cls: Optional[type] = None) -> "Alignment":
    """Hardened parse entry point for untrusted alignment text.

    Detects the format (FASTA when the first non-blank character is
    ``>``, PHYLIP otherwise), validates shape invariants the individual
    parsers leave to downstream code (equal, non-zero sequence
    lengths), and guarantees that *every* failure surfaces as a typed
    :class:`AlignmentError` — a ``ValueError``/``KeyError``/
    ``IndexError`` leaking from a parser bug is contained as the
    ``parse_error`` code rather than crashing an admission path.

    ``cls`` selects the alignment class (``Alignment`` by default;
    pass ``ProteinAlignment`` for amino-acid data).
    """
    if cls is None:
        cls = Alignment
    try:
        if not isinstance(text, str) or not text.strip():
            raise AlignmentError("empty", "empty alignment input")
        if text.lstrip().startswith(">"):
            sequences = parse_fasta(text)
        else:
            sequences = parse_phylip(text)
        lengths = {name: len(seq) for name, seq in sequences.items()}
        empties = [name for name, n in lengths.items() if n == 0]
        if empties:
            raise AlignmentError(
                "empty_sequence",
                f"zero-length sequence for taxa {empties!r}"
            )
        if len(set(lengths.values())) > 1:
            raise AlignmentError(
                "length_mismatch",
                f"sequences have unequal lengths: {sorted(set(lengths.values()))}"
            )
        return cls.from_sequences(sequences)
    except AlignmentError:
        raise
    except (ValueError, KeyError, IndexError) as exc:
        message = str(exc)
        if "character" in message or "invalid state masks" in message:
            raise AlignmentError("illegal_character", message) from exc
        if "unequal lengths" in message:
            raise AlignmentError("length_mismatch", message) from exc
        if "duplicate" in message:
            raise AlignmentError("duplicate_taxon", message) from exc
        raise AlignmentError("parse_error", message or repr(exc)) from exc


def _read_source(source: Union[str, os.PathLike]) -> str:
    """Return file contents if *source* is a path, else *source* itself."""
    if isinstance(source, os.PathLike):
        with open(source) as fh:
            return fh.read()
    if "\n" not in source and os.path.exists(source):
        with open(source) as fh:
            return fh.read()
    return source
