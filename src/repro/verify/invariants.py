"""Metamorphic invariants of the phylogenetic likelihood.

Each check exercises an algebraic property that must hold no matter how
the likelihood is implemented, so they catch bugs a differential diff
cannot (both engines wrong the same way):

* **Re-rooting (pulley principle)** — for a reversible model the tree
  likelihood is the same no matter which branch ``evaluate()`` is
  computed at.
* **Site permutation** — shuffling alignment columns permutes nothing
  after pattern compression (``np.unique`` canonicalizes column order),
  so the log likelihood must be *bit-for-bit* identical.
* **Taxon permutation** — reordering alignment rows only reorders the
  canonical patterns, changing summation order; likelihoods must agree
  to round-off.
* **Pattern compression** — scoring the compressed patterns must equal
  scoring every site as its own weight-1 pattern.
* **SPR round trip** — applying an SPR move and reverting it must
  restore the topology, every branch length, and the log likelihood
  bit-for-bit (the contract bit-identical cluster resume relies on).
* **JC69 two-taxon closed form** — the one case with a textbook
  analytic answer: ``P(same) = 1/4 + 3/4 e^{-4t/3}``.
* **Full-tree gradient invariances** — the one-pass
  ``branch_gradient_full`` sweep must be bit-identical no matter which
  inner node seeds the two traversals, its per-branch lnL entries must
  all equal the tree likelihood (the pulley principle, once per
  branch), site/taxon permutations of the alignment must not change it,
  and an SPR move that is applied and exactly reverted must leave the
  gradient of every surviving branch unchanged to tight round-off (the
  round trip reorders the gradient stack, and the batched contraction
  is not positionally bit-stable).

Checks raise :class:`InvariantViolation` (an ``AssertionError``) with a
diagnostic message and otherwise return the largest divergence they
observed, so tests can additionally assert tightness.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.engine import LikelihoodEngine
from ..phylo.models import SubstitutionModel
from ..phylo.rates import RateModel
from ..phylo.search import _apply_spr, _revert_spr, spr_neighborhood
from ..phylo.tree import Tree

__all__ = [
    "InvariantViolation",
    "fault_recovery_invariance",
    "gradient_rerooting_invariance",
    "gradient_site_permutation_invariance",
    "gradient_spr_roundtrip_invariance",
    "gradient_taxon_permutation_invariance",
    "jc69_two_taxon_closed_form",
    "pattern_compression_invariance",
    "rerooting_invariance",
    "site_permutation_invariance",
    "spr_roundtrip_invariance",
    "taxon_permutation_invariance",
    "two_taxon_tree",
]


class InvariantViolation(AssertionError):
    """A metamorphic property of the likelihood failed to hold."""


def _rel_diff(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def _forbid_per_site(rate_model: Optional[RateModel], what: str) -> None:
    if rate_model is not None and rate_model.is_per_site:
        raise ValueError(
            f"{what} re-derives the pattern set, which would invalidate a "
            "CAT model's per-pattern category assignment; use a uniform or "
            "Gamma rate model"
        )


# -- re-rooting (pulley principle) ------------------------------------------


def rerooting_invariance(engine, rel_tol: float = 1e-9) -> float:
    """``evaluate(branch)`` must agree at **every** branch of the tree.

    *engine* is anything exposing ``tree`` and ``evaluate(branch)`` —
    the fast engine or the oracle.  Returns the maximum relative spread.
    """
    branches = engine.tree.branches
    values = [(b.index, engine.evaluate(b)) for b in branches]
    reference_id, reference = values[0]
    worst = 0.0
    for branch_id, value in values[1:]:
        diff = _rel_diff(value, reference)
        worst = max(worst, diff)
        if diff > rel_tol:
            raise InvariantViolation(
                f"pulley principle violated: lnL at branch {branch_id} is "
                f"{value!r} but branch {reference_id} gave {reference!r} "
                f"(rel diff {diff:.3e} > {rel_tol:g})"
            )
    return worst


# -- fault-recovery invariance (chaos transparency) --------------------------


def fault_recovery_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    backend=None,
) -> float:
    """A recovered transient fault must leave the lnL bit-identical.

    Evaluates the same (alignment, tree, model) twice on the fast
    engine: once cleanly, once under a :mod:`repro.chaos` plan that
    poisons the first freshly computed CLV with NaN.  The degradation
    ladder must detect the poison, drop every cache, recompute, and
    return the *exact* clean bits — the metamorphic face of the chaos
    campaign's ``survived_identical`` contract.  Returns the absolute
    difference (asserted to be 0.0).
    """
    from ..chaos import FaultPlan, FaultSpec, inject
    from ..chaos.plan import ENGINE_CLV_POISON

    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    clean = _engine_loglik(
        patterns, model, rate_model, tree, LikelihoodEngine, backend
    )
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(ENGINE_CLV_POISON, trigger_at=(0,), value="nan"),),
    )
    kwargs = {} if backend is None else {"backend": backend}
    engine = LikelihoodEngine(patterns, model, rate_model, tree, **kwargs)
    try:
        with inject(plan) as injector:
            recovered = engine.evaluate(tree.branches[0])
        if not injector.fired.get(ENGINE_CLV_POISON):
            raise InvariantViolation(
                "fault_recovery_invariance is vacuous: the CLV-poison "
                "fault never fired (no newview was computed?)"
            )
        if engine.fault_recoveries < 1:
            raise InvariantViolation(
                "the poisoned CLV was never detected: the guard did not "
                "record a recovery"
            )
    finally:
        engine.detach()
    if recovered != clean:
        raise InvariantViolation(
            f"fault recovery changed the lnL bit pattern: clean "
            f"{clean!r} vs recovered {recovered!r}"
        )
    return abs(recovered - clean)


# -- permutation and compression invariances --------------------------------


def _engine_loglik(
    patterns: PatternAlignment,
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    tree: Tree,
    engine_cls: Type = LikelihoodEngine,
    backend=None,
) -> float:
    # backend=None keeps engine classes without a backend parameter
    # (e.g. the oracle, which hard-wires "reference") constructible.
    kwargs = {} if backend is None else {"backend": backend}
    engine = engine_cls(patterns, model, rate_model, tree, **kwargs)
    try:
        return engine.evaluate(tree.branches[0])
    finally:
        if hasattr(engine, "detach"):
            engine.detach()


def site_permutation_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    engine_cls: Type = LikelihoodEngine,
    backend=None,
) -> float:
    """Shuffling columns must leave the compressed lnL bit-identical.

    ``Alignment.compress`` canonicalizes pattern order via ``np.unique``,
    so a column shuffle produces the *same* compressed instance and the
    engine must return the exact same float.  Returns the absolute
    difference (asserted to be 0.0).
    """
    alignment = Alignment.from_sequences(sequences)
    permutation = rng.permutation(alignment.n_sites)
    shuffled = Alignment(alignment.taxa, alignment.data[:, permutation])

    base = alignment.compress()
    other = shuffled.compress()
    if not np.array_equal(base.patterns, other.patterns) or not np.array_equal(
        base.weights, other.weights
    ):
        raise InvariantViolation(
            "pattern compression is not canonical: a column shuffle "
            "changed the (patterns, weights) pair"
        )

    tree = Tree.from_tip_names(base.taxa, rng)
    lnl_base = _engine_loglik(base, model, rate_model, tree, engine_cls, backend)
    lnl_other = _engine_loglik(other, model, rate_model, tree, engine_cls, backend)
    if lnl_base != lnl_other:
        raise InvariantViolation(
            f"site permutation changed the lnL bit pattern: "
            f"{lnl_base!r} vs {lnl_other!r}"
        )
    return abs(lnl_base - lnl_other)


def taxon_permutation_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    rel_tol: float = 1e-9,
    engine_cls: Type = LikelihoodEngine,
    backend=None,
) -> float:
    """Reordering alignment rows must not change the likelihood.

    Row order changes the canonical pattern *order* (``np.unique`` sorts
    lexicographically by row), so sums accumulate in a different order —
    agreement is to round-off, not bit-for-bit.  Returns the relative
    difference.
    """
    _forbid_per_site(rate_model, "taxon permutation")
    names = list(sequences)
    shuffled_names = list(names)
    rng.shuffle(shuffled_names)
    reordered = {name: sequences[name] for name in shuffled_names}

    base = Alignment.from_sequences(sequences).compress()
    other = Alignment.from_sequences(reordered).compress()
    tree = Tree.from_tip_names(sorted(names), rng)

    lnl_base = _engine_loglik(base, model, rate_model, tree, engine_cls, backend)
    lnl_other = _engine_loglik(other, model, rate_model, tree, engine_cls, backend)
    diff = _rel_diff(lnl_base, lnl_other)
    if diff > rel_tol:
        raise InvariantViolation(
            f"taxon permutation changed the lnL: {lnl_base!r} vs "
            f"{lnl_other!r} (rel diff {diff:.3e} > {rel_tol:g})"
        )
    return diff


def pattern_compression_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    rel_tol: float = 1e-9,
    engine_cls: Type = LikelihoodEngine,
    backend=None,
) -> float:
    """Compressed patterns must score like one weight-1 pattern per site.

    Builds an *uncompressed* :class:`PatternAlignment` (every column its
    own pattern, weight 1, duplicates retained) and compares.  Returns
    the relative difference.
    """
    _forbid_per_site(rate_model, "pattern compression comparison")
    alignment = Alignment.from_sequences(sequences)
    compressed = alignment.compress()
    uncompressed = PatternAlignment(
        taxa=list(alignment.taxa),
        patterns=np.ascontiguousarray(alignment.data),
        weights=np.ones(alignment.n_sites),
        site_to_pattern=np.arange(alignment.n_sites, dtype=np.intp),
        n_sites=alignment.n_sites,
    )
    tree = Tree.from_tip_names(compressed.taxa, rng)
    lnl_compressed = _engine_loglik(
        compressed, model, rate_model, tree, engine_cls, backend
    )
    lnl_full = _engine_loglik(
        uncompressed, model, rate_model, tree, engine_cls, backend
    )
    diff = _rel_diff(lnl_compressed, lnl_full)
    if diff > rel_tol:
        raise InvariantViolation(
            f"pattern compression changed the lnL: compressed "
            f"{lnl_compressed!r} vs per-site {lnl_full!r} "
            f"(rel diff {diff:.3e} > {rel_tol:g})"
        )
    return diff


# -- SPR round trip ---------------------------------------------------------


def spr_roundtrip_invariance(
    engine: LikelihoodEngine, rng: np.random.Generator, radius: int = 2
) -> Tuple[float, float]:
    """Apply one SPR move, revert it, and demand exact restoration.

    The reverted tree must have the original bipartitions, the original
    multiset of branch lengths, and — because the engine recomputes the
    dirtied CLVs through the very same kernels on the very same inputs —
    the *bit-for-bit* original log likelihood.  Evaluation happens at a
    branch untouched by the move so the before/after computation is
    anchored identically.

    Returns ``(lnl_before, lnl_moved)``; raises if no valid move exists.
    """
    tree = engine.tree
    moves = []
    for prune_branch in tree.branches:
        for keep_side in prune_branch.nodes:
            if keep_side.is_tip:
                continue
            targets = spr_neighborhood(tree, prune_branch, keep_side, radius)
            for target in targets:
                moves.append((prune_branch, keep_side, target))
    if not moves:
        raise InvariantViolation("tree admits no SPR move to round-trip")
    prune_branch, keep_side, target = moves[int(rng.integers(len(moves)))]

    # Anchor the evaluation at a branch both the apply and the revert
    # leave alone: the move retires the pruned branch, the junction's two
    # other branches, and the target.
    touched = {prune_branch.index, target.index}
    touched.update(b.index for b in keep_side.branches)
    anchor = next(
        (b for b in tree.branches if b.index not in touched), None
    )
    if anchor is None:
        raise InvariantViolation("no move-independent anchor branch found")

    bipartitions_before = tree.bipartitions()
    lengths_before = sorted(b.length for b in tree.branches)
    lnl_before = engine.evaluate(anchor)

    move = _apply_spr(tree, prune_branch, keep_side, target)
    lnl_moved = engine.evaluate(anchor)
    _revert_spr(tree, move)
    tree.validate()

    if tree.bipartitions() != bipartitions_before:
        raise InvariantViolation("SPR revert did not restore the topology")
    lengths_after = sorted(b.length for b in tree.branches)
    if lengths_after != lengths_before:
        raise InvariantViolation(
            "SPR revert did not restore the branch-length multiset"
        )
    lnl_after = engine.evaluate(anchor)
    if lnl_after != lnl_before:
        raise InvariantViolation(
            f"SPR round trip drifted the lnL bit pattern: "
            f"{lnl_before!r} -> {lnl_after!r}"
        )
    return lnl_before, lnl_moved


# -- full-tree gradient invariances -----------------------------------------


def _engine_gradient(
    patterns: PatternAlignment,
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    tree: Tree,
    backend=None,
) -> Dict[int, Tuple[float, float, float]]:
    """``branch id -> (lnL, d1, d2)`` from one fused gradient sweep."""
    kwargs = {} if backend is None else {"backend": backend}
    engine = LikelihoodEngine(patterns, model, rate_model, tree, **kwargs)
    try:
        branches, lnl, d1, d2 = engine.branch_gradient_full()
        return {
            b.index: (float(lnl[k]), float(d1[k]), float(d2[k]))
            for k, b in enumerate(branches)
        }
    finally:
        engine.detach()


def gradient_rerooting_invariance(engine, rel_tol: float = 1e-9) -> float:
    """The fused gradient must not depend on the sweep root, bit for bit.

    ``branch_gradient_full`` seeds its two traversals at an arbitrary
    inner node; every directional CLV it fills is root-independent, so
    two sweeps rooted at *different* inner nodes must return the exact
    same arrays.  On top of that, each per-branch lnL entry is the tree
    likelihood evaluated at that branch (the pulley principle), so the
    lnL vector must be flat to *rel_tol*.  Returns the maximum relative
    lnL spread.
    """
    inner = [n for n in engine.tree.inner_nodes]
    if len(inner) < 2:
        raise InvariantViolation(
            "gradient re-rooting needs at least two inner nodes"
        )
    b0, lnl0, d10, d20 = engine.branch_gradient_full(root=inner[0])
    b1, lnl1, d11, d21 = engine.branch_gradient_full(root=inner[-1])
    if [b.index for b in b0] != [b.index for b in b1]:
        raise InvariantViolation(
            "gradient sweeps enumerated branches in different orders"
        )
    for name, a, b in (("lnL", lnl0, lnl1), ("d1", d10, d11),
                       ("d2", d20, d21)):
        if not np.array_equal(a, b):
            k = int(np.argmax(a != b))
            raise InvariantViolation(
                f"gradient {name} depends on the sweep root: entry {k} is "
                f"{a[k]!r} from root {inner[0].index} but {b[k]!r} from "
                f"root {inner[-1].index}"
            )
    worst = 0.0
    reference = float(lnl0[0])
    for k in range(1, len(lnl0)):
        diff = _rel_diff(float(lnl0[k]), reference)
        worst = max(worst, diff)
        if diff > rel_tol:
            raise InvariantViolation(
                f"gradient lnL vector violates the pulley principle: "
                f"entry {k} is {float(lnl0[k])!r} but entry 0 gave "
                f"{reference!r} (rel diff {diff:.3e} > {rel_tol:g})"
            )
    return worst


def gradient_site_permutation_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    backend=None,
) -> float:
    """Shuffling columns must leave the full-tree gradient bit-identical.

    Pattern compression canonicalizes column order, so the shuffled
    alignment compresses to the same instance and every (lnL, d1, d2)
    triple must come back with the exact same bits.  Returns 0.0.
    """
    alignment = Alignment.from_sequences(sequences)
    permutation = rng.permutation(alignment.n_sites)
    shuffled = Alignment(alignment.taxa, alignment.data[:, permutation])
    base = alignment.compress()
    other = shuffled.compress()
    tree = Tree.from_tip_names(base.taxa, rng)
    grad_base = _engine_gradient(base, model, rate_model, tree, backend)
    grad_other = _engine_gradient(other, model, rate_model, tree, backend)
    if grad_base != grad_other:
        culprit = next(
            idx for idx in grad_base if grad_base[idx] != grad_other.get(idx)
        )
        raise InvariantViolation(
            f"site permutation changed the gradient at branch {culprit}: "
            f"{grad_base[culprit]!r} vs {grad_other.get(culprit)!r}"
        )
    return 0.0


def gradient_taxon_permutation_invariance(
    sequences: Dict[str, str],
    model: SubstitutionModel,
    rate_model: Optional[RateModel],
    rng: np.random.Generator,
    rel_tol: float = 1e-9,
    backend=None,
) -> float:
    """Reordering alignment rows must not change the gradient.

    Row order permutes the canonical pattern order, so per-branch
    values accumulate in a different order — agreement is to round-off
    with the same small absolute floor the differential harness grants
    d1/d2 (cancellation).  Returns the worst relative difference.
    """
    _forbid_per_site(rate_model, "taxon permutation")
    names = list(sequences)
    shuffled_names = list(names)
    rng.shuffle(shuffled_names)
    reordered = {name: sequences[name] for name in shuffled_names}
    base = Alignment.from_sequences(sequences).compress()
    other = Alignment.from_sequences(reordered).compress()
    tree = Tree.from_tip_names(sorted(names), rng)
    grad_base = _engine_gradient(base, model, rate_model, tree, backend)
    grad_other = _engine_gradient(other, model, rate_model, tree, backend)
    worst = 0.0
    for idx, triple_base in grad_base.items():
        triple_other = grad_other[idx]
        for part, (a, b) in enumerate(zip(triple_base, triple_other)):
            diff = _rel_diff(a, b)
            tol = rel_tol if part == 0 else rel_tol * 10
            if abs(a - b) > tol * max(abs(a), abs(b), 1e-300) + (
                0.0 if part == 0 else 1e-7
            ):
                raise InvariantViolation(
                    f"taxon permutation changed gradient part {part} at "
                    f"branch {idx}: {a!r} vs {b!r} (rel diff {diff:.3e})"
                )
            worst = max(worst, diff)
    return worst


def gradient_spr_roundtrip_invariance(
    engine: LikelihoodEngine,
    rng: np.random.Generator,
    radius: int = 2,
    rel_tol: float = 1e-12,
) -> int:
    """An applied-then-reverted SPR must leave the gradient unchanged.

    Every branch that survives the round trip (the move retires the
    pruned branch and recreates it under a fresh id) must get the same
    (lnL, d1, d2) back to *rel_tol*: the revert restores topology and
    lengths exactly and the dirtied CLVs recompute to the same bits —
    but the round trip reorders ``tree.branches``, which shifts each
    branch's position in the fused gradient stack, and the batched
    contraction is not positionally bit-stable (a slice's row placement
    in the underlying GEMM changes its round-off by ~1 ULP).  Agreement
    is therefore to tight round-off, not bit-for-bit.  Returns the
    number of surviving branches compared (raises if none survive).
    """
    tree = engine.tree
    moves = []
    for prune_branch in tree.branches:
        for keep_side in prune_branch.nodes:
            if keep_side.is_tip:
                continue
            for target in spr_neighborhood(tree, prune_branch, keep_side,
                                           radius):
                moves.append((prune_branch, keep_side, target))
    if not moves:
        raise InvariantViolation("tree admits no SPR move to round-trip")
    prune_branch, keep_side, target = moves[int(rng.integers(len(moves)))]

    branches, lnl, d1, d2 = engine.branch_gradient_full()
    before = {
        b.index: (float(lnl[k]), float(d1[k]), float(d2[k]))
        for k, b in enumerate(branches)
    }
    move = _apply_spr(tree, prune_branch, keep_side, target)
    _revert_spr(tree, move)
    tree.validate()
    branches, lnl, d1, d2 = engine.branch_gradient_full()
    after = {
        b.index: (float(lnl[k]), float(d1[k]), float(d2[k]))
        for k, b in enumerate(branches)
    }
    surviving = sorted(set(before) & set(after))
    if not surviving:
        raise InvariantViolation(
            "gradient SPR round trip is vacuous: no branch survived"
        )
    for idx in surviving:
        for part, (a, b) in enumerate(zip(before[idx], after[idx])):
            if abs(a - b) > rel_tol * max(abs(a), abs(b)) + 1e-9:
                raise InvariantViolation(
                    f"SPR round trip drifted gradient part {part} at "
                    f"branch {idx}: {a!r} -> {b!r}"
                )
    return len(surviving)


# -- JC69 two-taxon closed form ---------------------------------------------


def two_taxon_tree(name_a: str, name_b: str, length: float) -> Tree:
    """The degenerate two-tip tree: one branch of the given length.

    ``Tree.from_tip_names`` refuses n < 3, so this builds the graph by
    hand — the only shape with a textbook closed-form JC69 likelihood.
    """
    tree = Tree()
    a = tree._new_node(name_a)
    b = tree._new_node(name_b)
    tree._new_branch(a, b, length)
    tree.validate()
    return tree


def jc69_two_taxon_closed_form(length: float, n_same: int, n_diff: int) -> float:
    """Analytic JC69 lnL for two sequences at branch length *length*.

    With the rate-normalized JC69 generator (1 expected substitution per
    unit time), ``P(same, t) = 1/4 + 3/4 e^{-4t/3}`` and
    ``P(diff, t) = 1/4 - 1/4 e^{-4t/3}``; each matching site contributes
    ``log(pi * P(same))`` and each mismatching site ``log(pi * P(diff))``
    with ``pi = 1/4``.
    """
    decay = math.exp(-4.0 * length / 3.0)
    p_same = 0.25 + 0.75 * decay
    p_diff = 0.25 - 0.25 * decay
    return n_same * math.log(0.25 * p_same) + n_diff * math.log(0.25 * p_diff)
