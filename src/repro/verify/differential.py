"""Differential fuzzing: fast engine vs. loop-based oracle.

Every case is a random (alignment, tree, model, rate model) quadruple
derived deterministically from one integer seed.  The fast
:class:`~repro.phylo.likelihood.LikelihoodEngine` — on any registered
kernel backend, selectable per run — and the
:class:`~repro.verify.oracle.ReferenceEngine` score the identical
instance, and the harness compares:

* the log likelihood at several branches (``evaluate``),
* one inner conditional likelihood vector and its scale counts
  (``newview``) — scale counts must match *exactly*,
* the branch-length derivative triple at a couple of branches
  (``makenewz``'s inner loop),
* the one-pass full-tree gradient (``branch_gradient_full``) against
  the per-branch derivative path on **every** branch, against the
  oracle at the sampled branches, and — for ``d1`` — against a central
  finite difference of the oracle's log likelihood.

Divergence is reported both as relative error and in ULPs (units in the
last place) of the larger magnitude, and a failing case carries its seed
so ``run_differential(n_cases=1, seed=<seed>)`` — or
``repro-phylo verify --fuzz 1 --seed <seed>`` — reproduces it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.engine import LikelihoodEngine
from ..phylo.models import GTR, HKY85, JC69, K80, SubstitutionModel
from ..phylo.rates import CatRates, GammaRates, RateModel, UniformRate
from ..phylo.tree import Tree
from .oracle import ReferenceEngine

__all__ = [
    "Case",
    "CaseResult",
    "DifferentialFailure",
    "FuzzReport",
    "compare_case",
    "random_case",
    "run_differential",
]

#: Default agreement bar: 1e-9 *relative* on every compared value.
DEFAULT_REL_TOL = 1e-9


class DifferentialFailure(AssertionError):
    """Fast engine and oracle disagreed beyond tolerance."""


@dataclass
class Case:
    """One reproducible fuzz instance."""

    seed: int
    patterns: PatternAlignment
    tree: Tree
    model: SubstitutionModel
    rate_model: RateModel
    description: str


@dataclass
class Comparison:
    """One compared scalar: where it came from and how far apart.

    ``loose`` marks probes that carry their own coarser bar by design
    (the finite-difference slope checks, whose truncation error dwarfs
    1e-9); they still fail a case when violated but are excluded from
    the tight ``max_rel_err``/``max_ulps`` aggregates.
    """

    what: str
    fast: float
    oracle: float
    rel_err: float
    ulps: float
    loose: bool = False


@dataclass
class CaseResult:
    """Outcome of diffing one case."""

    seed: int
    description: str
    comparisons: List[Comparison] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def max_ulps(self) -> float:
        return max(
            (c.ulps for c in self.comparisons if not c.loose), default=0.0
        )

    @property
    def max_rel_err(self) -> float:
        return max(
            (c.rel_err for c in self.comparisons if not c.loose), default=0.0
        )


@dataclass
class FuzzReport:
    """Aggregate of a whole fuzzing run."""

    n_cases: int
    seed: int
    rel_tol: float
    results: List[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def max_ulps(self) -> float:
        return max((r.max_ulps for r in self.results), default=0.0)

    @property
    def max_rel_err(self) -> float:
        return max((r.max_rel_err for r in self.results), default=0.0)

    def summary(self) -> str:
        lines = [
            f"differential fuzz: {self.n_cases} cases "
            f"(base seed {self.seed}, rel tol {self.rel_tol:g})",
            f"  max divergence: {self.max_rel_err:.3e} relative, "
            f"{self.max_ulps:.1f} ulps",
        ]
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for result in self.failures:
                lines.append(f"    seed {result.seed}: {result.description}")
                for message in result.failures:
                    lines.append(f"      {message}")
                lines.append(
                    f"      reproduce: repro-phylo verify --fuzz 1 "
                    f"--seed {result.seed}"
                )
        else:
            lines.append("  all cases agree")
        return "\n".join(lines)


def _ulps(a: float, b: float) -> float:
    """Distance between *a* and *b* in units-in-the-last-place of the
    larger magnitude (0 when equal)."""
    if a == b:
        return 0.0
    spacing = float(np.spacing(max(abs(a), abs(b))))
    return abs(a - b) / spacing if spacing else float("inf")


def random_case(seed: int, max_taxa: int = 8, max_sites: int = 40) -> Case:
    """The deterministic fuzz instance for one seed.

    Sweeps taxon/site counts, all four named DNA models plus random
    GTRs, and all three rate treatments (uniform, Gamma, CAT) so every
    kernel path of the fast engine (integrated and per-site) is diffed.
    """
    rng = np.random.default_rng(np.random.SeedSequence([0xD1FF, seed]))
    n_taxa = int(rng.integers(4, max_taxa + 1))
    n_sites = int(rng.integers(12, max_sites + 1))
    seqs = {
        f"t{i}": "".join(rng.choice(list("ACGT"), n_sites))
        for i in range(n_taxa)
    }
    patterns = Alignment.from_sequences(seqs).compress()
    tree = Tree.from_tip_names(
        patterns.taxa, rng, mean_branch_length=float(rng.uniform(0.02, 0.6))
    )

    model_kind = int(rng.integers(0, 4))
    if model_kind == 0:
        model = JC69()
    elif model_kind == 1:
        model = K80(kappa=float(rng.uniform(0.5, 6.0)))
    elif model_kind == 2:
        freqs = rng.uniform(0.05, 1.0, 4)
        model = HKY85(kappa=float(rng.uniform(0.5, 6.0)), frequencies=tuple(freqs))
    else:
        rates = rng.uniform(0.1, 8.0, 6)
        freqs = rng.uniform(0.05, 1.0, 4)
        model = GTR(tuple(rates), tuple(freqs))

    rate_kind = int(rng.integers(0, 3))
    if rate_kind == 0:
        rate_model = UniformRate()
    elif rate_kind == 1:
        rate_model = GammaRates(
            alpha=float(rng.uniform(0.2, 2.0)),
            n_categories=int(rng.choice([2, 4])),
        )
    else:
        site_rates = rng.uniform(0.25, 4.0, patterns.n_patterns)
        rate_model = CatRates(site_rates, n_categories=int(rng.choice([2, 3])))

    description = (
        f"{n_taxa} taxa x {n_sites} sites ({patterns.n_patterns} patterns), "
        f"{model.name}, {rate_model.name}"
    )
    return Case(seed, patterns, tree, model, rate_model, description)


def _compare(result: CaseResult, what: str, fast: float, oracle: float,
             rel_tol: float, abs_tol: float = 0.0,
             loose: bool = False) -> None:
    scale = max(abs(fast), abs(oracle), 1e-300)
    rel_err = abs(fast - oracle) / scale
    result.comparisons.append(
        Comparison(what, fast, oracle, rel_err, _ulps(fast, oracle),
                   loose=loose)
    )
    if abs(fast - oracle) > rel_tol * scale + abs_tol:
        result.failures.append(
            f"{what}: fast={fast!r} oracle={oracle!r} "
            f"(rel err {rel_err:.3e} > {rel_tol:g})"
        )


def compare_case(
    case: Case, rel_tol: float = DEFAULT_REL_TOL, backend=None
) -> CaseResult:
    """Diff the fast engine (on *backend*) against the oracle on one case.

    *backend* is any spec :func:`repro.phylo.engine.resolve_backend`
    accepts — a registry name like ``"einsum"`` or ``"partitioned:2"``,
    a live backend, or ``None`` for the session default.  Scale counts
    must match the oracle **exactly** whatever the backend; log
    likelihoods must agree within *rel_tol*.
    """
    result = CaseResult(seed=case.seed, description=case.description)
    tree = case.tree
    fast = LikelihoodEngine(
        case.patterns, case.model, case.rate_model, tree, backend=backend
    )
    oracle = ReferenceEngine(case.patterns, case.model, case.rate_model, tree)
    rng = np.random.default_rng(np.random.SeedSequence([0xD1FF + 1, case.seed]))
    try:
        branches = tree.branches
        # Log likelihood at three branches (spread over the tree).
        picks = sorted(
            set(int(i) for i in rng.integers(0, len(branches), 3))
        )
        for b in (branches[i] for i in picks):
            _compare(
                result, f"loglik@branch{b.index}",
                fast.evaluate(b), oracle.evaluate(b), rel_tol,
            )
        # One inner CLV, element-for-element, plus exact scale counts.
        inner_dirs = [
            (node, branch)
            for branch in branches
            for node in branch.nodes
            if not node.is_tip
        ]
        node, entry = inner_dirs[int(rng.integers(0, len(inner_dirs)))]
        fast_entry = fast.clv(node, entry)
        oracle_clv, oracle_sc = oracle.newview(node, entry)
        if not np.array_equal(fast_entry.scale_counts, oracle_sc):
            result.failures.append(
                f"newview@({node.index},{entry.index}): scale counts differ"
            )
        clv_scale = max(
            float(np.abs(fast_entry.clv).max()),
            float(np.abs(oracle_clv).max()),
            1e-300,
        )
        clv_err = float(np.abs(fast_entry.clv - oracle_clv).max()) / clv_scale
        result.comparisons.append(
            Comparison(
                f"newview@({node.index},{entry.index})",
                clv_err, 0.0, clv_err,
                clv_err / float(np.spacing(1.0)),
            )
        )
        if clv_err > rel_tol:
            result.failures.append(
                f"newview@({node.index},{entry.index}): max element rel "
                f"err {clv_err:.3e} > {rel_tol:g}"
            )
        # Branch-length derivatives at two branches.  First and second
        # derivatives involve cancellation the plain lnL does not, so
        # they get a small absolute floor on top of the relative bar.
        deriv_picks = sorted(set(int(i) for i in rng.integers(0, len(branches), 2)))
        oracle_derivs = {}
        for i in deriv_picks:
            b = branches[i]
            f_lnl, f_d1, f_d2 = fast_makenewz_derivatives(fast, b)
            o_lnl, o_d1, o_d2 = oracle.branch_derivatives(b)
            oracle_derivs[b.index] = (o_lnl, o_d1, o_d2)
            _compare(result, f"deriv.lnl@branch{b.index}", f_lnl, o_lnl, rel_tol)
            _compare(result, f"deriv.d1@branch{b.index}", f_d1, o_d1,
                     rel_tol * 10, abs_tol=1e-7)
            _compare(result, f"deriv.d2@branch{b.index}", f_d2, o_d2,
                     rel_tol * 10, abs_tol=1e-7)
        # Full-tree gradient: the one-pass fused sweep must agree with
        # the per-branch makenewz path on EVERY branch.  The per-branch
        # path quantizes lengths through the P-matrix cache while the
        # batch path projects exactly, so d1/d2 keep the same absolute
        # floor as above.
        g_branches, g_lnl, g_d1, g_d2 = fast.branch_gradient_full()
        grad_by_id = {}
        for k, b in enumerate(g_branches):
            grad_by_id[b.index] = k
            f_lnl, f_d1, f_d2 = fast.branch_derivatives(b)
            _compare(result, f"grad.lnl@branch{b.index}",
                     float(g_lnl[k]), f_lnl, rel_tol)
            _compare(result, f"grad.d1@branch{b.index}",
                     float(g_d1[k]), f_d1, rel_tol * 10, abs_tol=1e-7)
            _compare(result, f"grad.d2@branch{b.index}",
                     float(g_d2[k]), f_d2, rel_tol * 10, abs_tol=1e-7)
        # ... and with the oracle directly at the branches sampled above.
        for branch_id, (o_lnl, o_d1, o_d2) in oracle_derivs.items():
            k = grad_by_id[branch_id]
            _compare(result, f"grad.oracle.lnl@branch{branch_id}",
                     float(g_lnl[k]), o_lnl, rel_tol)
            _compare(result, f"grad.oracle.d1@branch{branch_id}",
                     float(g_d1[k]), o_d1, rel_tol * 10, abs_tol=1e-7)
            _compare(result, f"grad.oracle.d2@branch{branch_id}",
                     float(g_d2[k]), o_d2, rel_tol * 10, abs_tol=1e-7)
        # Central finite difference on the reference lnL: the analytic
        # d1 really is the derivative of the log likelihood, not just
        # internally consistent between the two analytic paths.  FD is
        # ill-conditioned at near-zero branch lengths, so the probe
        # length is clamped; with h = 1e-3 * t the truncation error is
        # ~1e-6 relative and the subtraction round-off ~eps|lnL|/h.
        b = branches[int(rng.integers(0, len(branches)))]
        t0 = max(float(b.length), 1e-4)
        h = 1e-3 * t0
        o_d1 = oracle.branch_derivatives(b, t0)[1]
        lnl_plus = oracle.branch_derivatives(b, t0 + h)[0]
        lnl_minus = oracle.branch_derivatives(b, t0 - h)[0]
        fd = (lnl_plus - lnl_minus) / (2.0 * h)
        _compare(result, f"fd.d1@branch{b.index}", o_d1, fd,
                 1e-5, abs_tol=1e-4, loose=True)
        if t0 == float(b.length):
            # Unclamped: the fused gradient's d1 must match the FD
            # slope too (same loose FD bar).
            _compare(result, f"fd.grad.d1@branch{b.index}",
                     float(g_d1[grad_by_id[b.index]]), fd,
                     1e-5, abs_tol=1e-4, loose=True)
    finally:
        fast.detach()
    return result


def fast_makenewz_derivatives(
    engine: LikelihoodEngine, branch, length: Optional[float] = None
) -> Tuple[float, float, float]:
    """The fast engine's ``(lnL, d1, d2)`` at a branch, via the same
    backend calls :meth:`LikelihoodEngine.makenewz` iterates.  Kept as
    a thin wrapper over the engine's public ``branch_derivatives`` for
    older call sites."""
    return engine.branch_derivatives(branch, length)


def run_differential(
    n_cases: int = 200,
    seed: int = 0,
    rel_tol: float = DEFAULT_REL_TOL,
    max_taxa: int = 8,
    max_sites: int = 40,
    raise_on_failure: bool = False,
    backend=None,
) -> FuzzReport:
    """Fuzz *n_cases* random instances; every case seed is ``seed + i``.

    *backend* selects the fast engine's kernel backend (default: the
    session default, i.e. ``REPRO_ENGINE_BACKEND`` or ``einsum``); the
    oracle side always runs the ``reference`` backend.  With
    ``raise_on_failure`` a :class:`DifferentialFailure` carrying the
    full summary (including reproduction seeds) is raised at the end if
    any case diverged; otherwise inspect ``report.failures``.
    """
    report = FuzzReport(n_cases=n_cases, seed=seed, rel_tol=rel_tol)
    for i in range(n_cases):
        case = random_case(seed + i, max_taxa=max_taxa, max_sites=max_sites)
        report.results.append(
            compare_case(case, rel_tol=rel_tol, backend=backend)
        )
    if raise_on_failure and report.failures:
        raise DifferentialFailure(report.summary())
    return report
