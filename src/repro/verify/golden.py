"""Golden corpus: committed exact values for fixed seeds.

Each :class:`GoldenCase` deterministically derives an (alignment, tree,
model) instance from its seed and records, into ``tests/golden/*.json``:

* the exact log likelihood of the fast engine *and* the loop oracle,
* one ``makenewz`` branch optimization (length + lnL),
* a tiny but full inference: hill-climb search, bootstrap replicates,
  streaming majority-rule consensus with supports,
* the shape (sorted key list) of ``perf_counters()``.

Floats survive the JSON round trip exactly (shortest-repr), and files
are serialized with sorted keys, so regeneration on the same platform is
byte-for-byte deterministic — ``repro-phylo verify --write`` twice must
produce identical bytes.  ``check_corpus`` compares structure and
strings exactly but allows a tiny relative tolerance on floats (default
``1e-12``) so a different BLAS backing ``eigh`` does not produce false
alarms; pass ``rel_tol=0.0`` for bit-exactness on one machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.aggregate import StreamingAggregator
from ..phylo.alignment import Alignment
from ..phylo.engine import LikelihoodEngine
from ..phylo.models import GTR, HKY85, JC69, K80, SubstitutionModel
from ..phylo.rates import CatRates, GammaRates, RateModel, UniformRate
from ..phylo.search import SearchConfig, hill_climb
from ..phylo.tree import Tree
from .oracle import ReferenceEngine

__all__ = [
    "GOLDEN_CASES",
    "GoldenCase",
    "build_case_instance",
    "check_corpus",
    "compute_case",
    "default_corpus_dir",
    "write_corpus",
]

#: Relative float tolerance used by :func:`check_corpus` by default.
DEFAULT_CHECK_REL_TOL = 1e-12


@dataclass(frozen=True)
class GoldenCase:
    """A self-describing seed for one golden record."""

    name: str
    seed: int
    n_taxa: int
    n_sites: int
    #: ("jc69",) | ("k80", kappa) | ("hky85", kappa, freqs) |
    #: ("gtr", rates, freqs)
    model: Tuple
    #: ("uniform",) | ("gamma", alpha, n_categories) | ("cat", n_categories)
    rates: Tuple
    n_bootstraps: int = 3


GOLDEN_CASES: Tuple[GoldenCase, ...] = (
    GoldenCase("jc69_uniform", seed=101, n_taxa=6, n_sites=80,
               model=("jc69",), rates=("uniform",)),
    GoldenCase("gtr_gamma", seed=202, n_taxa=7, n_sites=100,
               model=("gtr",
                      (1.2, 2.9, 0.7, 1.1, 3.4, 1.0),
                      (0.32, 0.18, 0.24, 0.26)),
               rates=("gamma", 0.5, 4)),
    GoldenCase("hky_cat", seed=303, n_taxa=6, n_sites=90,
               model=("hky85", 3.0, (0.3, 0.2, 0.2, 0.3)),
               rates=("cat", 3), n_bootstraps=2),
)

#: The small search configuration every golden inference uses.
_SEARCH_CONFIG = SearchConfig(
    initial_radius=1, max_radius=1, max_rounds=1,
    smoothing_passes=1, final_smoothing_passes=1,
)


def _build_model(spec: Tuple) -> SubstitutionModel:
    kind = spec[0]
    if kind == "jc69":
        return JC69()
    if kind == "k80":
        return K80(kappa=spec[1])
    if kind == "hky85":
        return HKY85(kappa=spec[1], frequencies=tuple(spec[2]))
    if kind == "gtr":
        return GTR(tuple(spec[1]), tuple(spec[2]))
    raise ValueError(f"unknown model spec {spec!r}")


def _build_rates(spec: Tuple, n_patterns: int,
                 rng: np.random.Generator) -> RateModel:
    kind = spec[0]
    if kind == "uniform":
        return UniformRate()
    if kind == "gamma":
        return GammaRates(alpha=spec[1], n_categories=spec[2])
    if kind == "cat":
        site_rates = rng.uniform(0.25, 4.0, n_patterns)
        return CatRates(site_rates, n_categories=spec[1])
    raise ValueError(f"unknown rate spec {spec!r}")


def _split_key(split) -> str:
    return "|".join(sorted(split))


def _branch_key(tree: Tree, branch) -> str:
    """Canonical bipartition label for a branch (lexicographically
    smaller side), stable across regenerations of the same case."""
    u, v = branch.nodes
    side_u = _split_key(tree.subtree_tips(u, branch))
    side_v = _split_key(tree.subtree_tips(v, branch))
    return min(side_u, side_v)


def build_case_instance(case: GoldenCase):
    """The deterministic (patterns, model, rate_model, tree, rng) for a
    golden case.  The returned ``rng`` has consumed exactly the draws
    :func:`compute_case` would have made up to this point, so callers
    (e.g. the gradient-smoothing equivalence test) reproduce the same
    instance the committed record describes."""
    rng = np.random.default_rng(np.random.SeedSequence([0x601D, case.seed]))
    seqs = {
        f"t{i}": "".join(rng.choice(list("ACGT"), case.n_sites))
        for i in range(case.n_taxa)
    }
    patterns = Alignment.from_sequences(seqs).compress()
    model = _build_model(case.model)
    rate_model = _build_rates(case.rates, patterns.n_patterns, rng)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    return patterns, model, rate_model, tree, rng


def compute_case(case: GoldenCase) -> Dict:
    """Recompute one golden record from scratch (fully seeded)."""
    patterns, model, rate_model, tree, rng = build_case_instance(case)

    # Golden records are pinned to the einsum backend: a committed file
    # must not depend on the REPRO_ENGINE_BACKEND override the suite
    # happens to run under (stripe-order reduction shifts lnL round-off).
    engine = LikelihoodEngine(
        patterns, model, rate_model, tree, backend="einsum"
    )
    try:
        log_likelihood = engine.evaluate(tree.branches[0])
        oracle = ReferenceEngine(patterns, model, rate_model, tree)
        oracle_log_likelihood = oracle.evaluate(tree.branches[0])

        # Full-tree gradient vector, keyed by canonical bipartition so
        # future kernel edits are byte-diffable.  Computed before any
        # tree mutation and without consuming rng draws, so every other
        # recorded value is untouched.
        g_branches, g_lnl, g_d1, g_d2 = engine.branch_gradient_full()
        gradient = {
            "log_likelihood": float(g_lnl[0]),
            "branches": {
                _branch_key(tree, b): {
                    "length": float(b.length),
                    "d1": float(g_d1[k]),
                    "d2": float(g_d2[k]),
                }
                for k, b in enumerate(g_branches)
            },
        }

        mk_branch = tree.branches[int(rng.integers(len(tree.branches)))]
        mk_length, mk_lnl = engine.makenewz(mk_branch)

        aggregator = StreamingAggregator()
        inference = hill_climb(engine, _SEARCH_CONFIG, rng)
        aggregator.ingest({
            "replicate": 0,
            "is_bootstrap": False,
            "newick": inference.newick,
            "log_likelihood": inference.log_likelihood,
        })
        for replicate in range(case.n_bootstraps):
            replicate_patterns = patterns.bootstrap_replicate(rng)
            replicate_tree = Tree.from_tip_names(patterns.taxa, rng)
            replicate_engine = LikelihoodEngine(
                replicate_patterns, model, rate_model, replicate_tree,
                backend="einsum",
            )
            try:
                replicate_result = hill_climb(
                    replicate_engine, _SEARCH_CONFIG, rng
                )
            finally:
                replicate_engine.detach()
            aggregator.ingest({
                "replicate": replicate,
                "is_bootstrap": True,
                "newick": replicate_result.newick,
                "log_likelihood": replicate_result.log_likelihood,
            })
        consensus_supports, consensus_newick = aggregator.consensus()
        perf_counter_keys = sorted(engine.perf_counters())
    finally:
        engine.detach()

    return {
        "name": case.name,
        "seed": case.seed,
        "config": {
            "n_taxa": case.n_taxa,
            "n_sites": case.n_sites,
            "n_patterns": patterns.n_patterns,
            "model": list(case.model[:1]) + [
                list(x) if isinstance(x, tuple) else x for x in case.model[1:]
            ],
            "rates": list(case.rates),
            "n_bootstraps": case.n_bootstraps,
        },
        "log_likelihood": log_likelihood,
        "oracle_log_likelihood": oracle_log_likelihood,
        "gradient": gradient,
        "makenewz": {"length": mk_length, "log_likelihood": mk_lnl},
        "inference": {
            "newick": inference.newick,
            "log_likelihood": inference.log_likelihood,
        },
        "consensus": {
            "newick": consensus_newick,
            "supports": {
                _split_key(split): support
                for split, support in sorted(
                    consensus_supports.items(), key=lambda kv: _split_key(kv[0])
                )
            },
        },
        "perf_counter_keys": perf_counter_keys,
    }


def default_corpus_dir() -> Path:
    """``tests/golden/`` next to the package's source checkout."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _case_path(corpus_dir: Path, case: GoldenCase) -> Path:
    return corpus_dir / f"{case.name}.json"


def _dump(record: Dict) -> str:
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


def write_corpus(
    corpus_dir: Optional[Path] = None,
    cases: Sequence[GoldenCase] = GOLDEN_CASES,
) -> List[Path]:
    """(Re)generate every golden file; returns the written paths."""
    corpus_dir = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    corpus_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for case in cases:
        path = _case_path(corpus_dir, case)
        path.write_text(_dump(compute_case(case)))
        written.append(path)
    return written


def _diff(prefix: str, expected, actual, rel_tol: float,
          mismatches: List[str]) -> None:
    """Recursive comparison: exact for structure/strings/ints, relative
    tolerance for floats."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                mismatches.append(f"{prefix}.{key}: unexpected key")
            elif key not in actual:
                mismatches.append(f"{prefix}.{key}: missing")
            else:
                _diff(f"{prefix}.{key}", expected[key], actual[key],
                      rel_tol, mismatches)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(
                f"{prefix}: length {len(actual)} != {len(expected)}"
            )
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(f"{prefix}[{i}]", e, a, rel_tol, mismatches)
        return
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        scale = max(abs(expected), abs(float(actual)), 1e-300)
        if abs(expected - float(actual)) > rel_tol * scale:
            mismatches.append(
                f"{prefix}: {actual!r} != {expected!r} "
                f"(rel err {abs(expected - actual) / scale:.3e})"
            )
        return
    if expected != actual:
        mismatches.append(f"{prefix}: {actual!r} != {expected!r}")


def check_corpus(
    corpus_dir: Optional[Path] = None,
    cases: Sequence[GoldenCase] = GOLDEN_CASES,
    rel_tol: float = DEFAULT_CHECK_REL_TOL,
) -> List[str]:
    """Recompute every case and diff against the committed files.

    Returns a (possibly empty) list of human-readable mismatch strings —
    empty means the corpus is valid.
    """
    corpus_dir = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    mismatches: List[str] = []
    for case in cases:
        path = _case_path(corpus_dir, case)
        if not path.exists():
            mismatches.append(f"{case.name}: missing golden file {path}")
            continue
        try:
            committed = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            mismatches.append(f"{case.name}: unreadable golden file ({exc})")
            continue
        _diff(case.name, committed, compute_case(case), rel_tol, mismatches)
    return mismatches
