"""Differential verification: correctness as an executable artifact.

The likelihood engine's entire claim to fidelity is numeric —
``newview()``, ``makenewz()`` and ``evaluate()`` must produce the same
log likelihoods no matter how aggressively the hot path is rewritten
(batched contractions, P-matrix caches, CLV arenas).  This package makes
that claim checkable at three independent tiers:

* :mod:`repro.verify.oracle` — :class:`ReferenceEngine`, a deliberately
  slow, loop-based reimplementation of the likelihood recursion with no
  einsum, no arena, no P-matrix cache and full per-call recomputation.
  It exposes the same ``loglik`` / ``newview`` / ``branch_derivatives``
  surface as the fast engine, so any two implementations can be diffed.
* :mod:`repro.verify.differential` — a seeded fuzzing harness that
  generates random (alignment, tree, model) triples, runs the fast
  engine against the oracle, and reports the maximum ULP divergence
  (with the failing case's seed, so every failure reproduces).
* :mod:`repro.verify.invariants` — metamorphic checks: algebraic
  properties the likelihood must satisfy regardless of implementation
  (pulley-principle re-rooting invariance, taxon/site permutation
  invariance, pattern compression, SPR apply→revert round trips,
  fault-recovery transparency under :mod:`repro.chaos` injection, a
  JC69 two-taxon analytic closed form, and the full-tree gradient's
  root/permutation/round-trip invariances).
* :mod:`repro.verify.golden` — a committed corpus of exact values for
  fixed seeds, regenerated or checked by ``repro-phylo verify``.

Every future kernel or search change inherits a push-button answer to
"did you break the math?" — see DESIGN.md §9.
"""

from .oracle import ReferenceEngine
from .differential import (
    CaseResult,
    DifferentialFailure,
    FuzzReport,
    compare_case,
    random_case,
    run_differential,
)
from .invariants import (
    InvariantViolation,
    fault_recovery_invariance,
    gradient_rerooting_invariance,
    gradient_site_permutation_invariance,
    gradient_spr_roundtrip_invariance,
    gradient_taxon_permutation_invariance,
    jc69_two_taxon_closed_form,
    pattern_compression_invariance,
    rerooting_invariance,
    site_permutation_invariance,
    spr_roundtrip_invariance,
    taxon_permutation_invariance,
    two_taxon_tree,
)
from .golden import (
    GOLDEN_CASES,
    build_case_instance,
    check_corpus,
    compute_case,
    default_corpus_dir,
    write_corpus,
)

__all__ = [
    "ReferenceEngine",
    "CaseResult",
    "DifferentialFailure",
    "FuzzReport",
    "compare_case",
    "random_case",
    "run_differential",
    "InvariantViolation",
    "fault_recovery_invariance",
    "gradient_rerooting_invariance",
    "gradient_site_permutation_invariance",
    "gradient_spr_roundtrip_invariance",
    "gradient_taxon_permutation_invariance",
    "jc69_two_taxon_closed_form",
    "pattern_compression_invariance",
    "rerooting_invariance",
    "site_permutation_invariance",
    "spr_roundtrip_invariance",
    "taxon_permutation_invariance",
    "two_taxon_tree",
    "GOLDEN_CASES",
    "build_case_instance",
    "check_corpus",
    "compute_case",
    "default_corpus_dir",
    "write_corpus",
]
