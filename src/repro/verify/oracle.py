"""A deliberately slow, loop-based reference likelihood engine.

:class:`ReferenceEngine` recomputes Felsenstein's pruning recursion from
first principles on every call: no einsum, no CLV arena, no P-matrix
cache, no lazy invalidation — just nested Python loops over patterns,
rate categories and states, seeded from the ``newview_combine_reference``
/ ``evaluate_loglik_reference`` scalar kernels in
:mod:`repro.phylo.kernels`.  Even the transition-matrix projection
``R diag(exp(lambda r t)) L`` is expanded element-wise here, so the
oracle shares **no** vectorized code path with
:class:`~repro.phylo.likelihood.LikelihoodEngine` beyond the eigensystem
of the substitution model itself.

It exposes the same numeric surface as the fast engine —
:meth:`loglik` / :meth:`evaluate`, :meth:`newview`, and
:meth:`branch_derivatives` — so the differential harness
(:mod:`repro.verify.differential`) can diff the two implementations
value-for-value.  The scaling discipline is identical (per-pattern
threshold ``2^-256``, exact power-of-two multiplier, NaN/Inf guard), so
scale counts must match the fast engine *exactly*, and because the
multiplier is a power of two the scaled log likelihood is compensated
without round-off.

Orders of magnitude slower than the fast engine by design; use tiny
instances (a handful of taxa, tens of patterns).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..phylo.alignment import PatternAlignment
from ..phylo.kernels import LOG_SCALE_FACTOR, SCALE_FACTOR, SCALE_THRESHOLD
from ..phylo.models import SubstitutionModel
from ..phylo.rates import RateModel, UniformRate
from ..phylo.tree import Branch, Node, Tree

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """Loop-based oracle sharing :class:`LikelihoodEngine`'s surface.

    Parameters mirror the fast engine: a pattern alignment, a
    substitution model, an optional rate model (uniform, Gamma or CAT)
    and the tree to score.  Unlike the fast engine it registers no
    observers and keeps no caches — every public call walks the whole
    tree again.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        model: SubstitutionModel,
        rate_model: Optional[RateModel] = None,
        tree: Optional[Tree] = None,
    ):
        if tree is None:
            raise ValueError("a tree is required")
        self.patterns = patterns
        self.model = model
        self.rate_model = rate_model or UniformRate()
        self.tree = tree
        self._n_states = model.n_states

        if self.rate_model.is_per_site:
            if len(self.rate_model.site_categories) != patterns.n_patterns:
                raise ValueError(
                    "CAT site_categories must assign every pattern a category"
                )
            self._site_rates = [
                float(self.rate_model.rates[c])
                for c in self.rate_model.site_categories
            ]
            self._cat_weights = [1.0]
            self._n_cats = 1
        else:
            self._site_rates = None
            self._cat_weights = [float(w) for w in self.rate_model.weights]
            self._n_cats = self.rate_model.n_categories

        self._tip_index: Dict[int, int] = {
            node.index: patterns.taxon_index(node.name) for node in tree.tips
        }
        # The eigensystem is the one shared numeric artifact: verifying
        # it independently would mean reimplementing eigh.  The
        # *projection* to P(t) below is expanded element-wise, so the
        # model's einsum-based transition_matrices is NOT on this path.
        self._eigenvalues = [float(x) for x in model._eigenvalues]
        self._right = model._right.tolist()
        self._left = model._left.tolist()
        self._pi = [float(x) for x in model.pi]

    # -- transition matrices (element-wise projection) -----------------------

    def _rate_rows(self) -> List[float]:
        """One rate multiplier per matrix row: categories, or patterns
        in CAT mode."""
        if self._site_rates is not None:
            return self._site_rates
        return [float(r) for r in self.rate_model.rates]

    def _project(self, t: float, order: int) -> List[List[List[float]]]:
        """``d^order/dt^order P(r t)`` for every rate row, as lists.

        ``P[r][i][j] = sum_k R[i][k] (lam_k r)^order exp(lam_k r t) L[k][j]``.
        """
        n = self._n_states
        out = []
        for r in self._rate_rows():
            mat = [[0.0] * n for _ in range(n)]
            weights = []
            for lam in self._eigenvalues:
                lam_r = lam * r
                weights.append((lam_r ** order) * math.exp(lam_r * t))
            for i in range(n):
                row_r = self._right[i]
                row = mat[i]
                for j in range(n):
                    acc = 0.0
                    for k in range(n):
                        acc += row_r[k] * weights[k] * self._left[k][j]
                    row[j] = acc
            out.append(mat)
        return out

    def _pmatrix(self, length: float) -> List[List[List[float]]]:
        if length < 0:
            raise ValueError("branch length must be non-negative")
        return self._project(length, 0)

    # -- CLV recursion -------------------------------------------------------

    def _p_row(self, p, s: int, c: int) -> List[List[float]]:
        """The (n, n) transition matrix for pattern *s*, category *c*."""
        return p[s] if self._site_rates is not None else p[c]

    def _tip_rows(self, node: Node) -> List[List[float]]:
        return self.patterns.tip_partials(self._tip_index[node.index]).tolist()

    def _propagated(self, node: Node, via: Branch
                    ) -> Tuple[List[List[List[float]]], List[int]]:
        """CLV of the subtree at *node* away from *via*, pushed across
        *via*'s transition matrices.  Returns ``(term, scale_counts)``."""
        p = self._pmatrix(via.length)
        n_patterns, n_cats, n = self.patterns.n_patterns, self._n_cats, self._n_states
        if node.is_tip:
            rows = self._tip_rows(node)
            source = [[rows[s]] * n_cats for s in range(n_patterns)]
            scale = [0] * n_patterns
        else:
            source, scale = self._clv(node, via)
        term = [
            [[0.0] * n for _ in range(n_cats)] for _ in range(n_patterns)
        ]
        for s in range(n_patterns):
            for c in range(n_cats):
                mat = self._p_row(p, s, c)
                src = source[s][c]
                dst = term[s][c]
                for i in range(n):
                    acc = 0.0
                    row = mat[i]
                    for j in range(n):
                        acc += row[j] * src[j]
                    dst[i] = acc
        return term, scale

    def _clv(self, node: Node, entry: Branch
             ) -> Tuple[List[List[List[float]]], List[int]]:
        """Recursive ``newview()``: combine the two propagated children,
        then apply the underflow-rescaling check pattern by pattern."""
        children = [b for b in node.branches if b is not entry]
        if len(children) != 2:
            raise ValueError("newview requires an inner node of degree 3")
        (b1, b2) = children
        term1, sc1 = self._propagated(b1.other(node), b1)
        term2, sc2 = self._propagated(b2.other(node), b2)
        n_patterns, n_cats, n = self.patterns.n_patterns, self._n_cats, self._n_states
        clv = [[[0.0] * n for _ in range(n_cats)] for _ in range(n_patterns)]
        scale = [sc1[s] + sc2[s] for s in range(n_patterns)]
        for s in range(n_patterns):
            pattern_max = 0.0
            for c in range(n_cats):
                t1, t2, dst = term1[s][c], term2[s][c], clv[s][c]
                for i in range(n):
                    value = t1[i] * t2[i]
                    dst[i] = value
                    if not math.isfinite(value):
                        raise FloatingPointError(
                            f"non-finite CLV entries at pattern {s} "
                            f"(NaN/Inf reached the underflow-rescaling check)"
                        )
                    if value > pattern_max:
                        pattern_max = value
            if pattern_max < SCALE_THRESHOLD:
                for c in range(n_cats):
                    row = clv[s][c]
                    for i in range(n):
                        row[i] *= SCALE_FACTOR
                scale[s] += 1
        return clv, scale

    def newview(self, node: Node, entry: Branch
                ) -> Tuple[np.ndarray, np.ndarray]:
        """The CLV at inner *node* for the subtree away from *entry*.

        Returns ``(clv, scale_counts)`` with the fast engine's shapes:
        ``(n_patterns, n_cats, n_states)`` and ``(n_patterns,)``.
        """
        if node.is_tip:
            raise ValueError("tips have no CLV")
        clv, scale = self._clv(node, entry)
        return np.asarray(clv, dtype=np.float64), np.asarray(scale, dtype=np.int64)

    def _side(self, node: Node, branch: Branch
              ) -> Tuple[List[List[List[float]]], List[int]]:
        """Unpropagated CLV facing *branch* from *node*'s side."""
        n_patterns, n_cats = self.patterns.n_patterns, self._n_cats
        if node.is_tip:
            rows = self._tip_rows(node)
            return [[rows[s]] * n_cats for s in range(n_patterns)], [0] * n_patterns
        return self._clv(node, branch)

    # -- evaluate ------------------------------------------------------------

    def evaluate(self, branch: Optional[Branch] = None) -> float:
        """Log likelihood of the tree at *branch* (branch-independent for
        a reversible model — the pulley principle)."""
        if branch is None:
            branch = self.tree.branches[0]
        u, v = branch.nodes
        if v.is_tip and not u.is_tip:
            u, v = v, u
        u_clv, u_sc = self._side(u, branch)
        v_term, v_sc = self._propagated(v, branch)
        n_patterns, n_cats, n = self.patterns.n_patterns, self._n_cats, self._n_states
        weights = self.patterns.weights
        pi = self._pi
        total = 0.0
        for s in range(n_patterns):
            site = 0.0
            for c in range(n_cats):
                us, vs = u_clv[s][c], v_term[s][c]
                cat = 0.0
                for i in range(n):
                    cat += pi[i] * us[i] * vs[i]
                site += self._cat_weights[c] * cat
            if site <= 0.0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
            total += float(weights[s]) * (
                math.log(site) - (u_sc[s] + v_sc[s]) * LOG_SCALE_FACTOR
            )
        return total

    #: Alias matching the verification surface named in DESIGN.md §9.
    loglik = evaluate

    def log_likelihood(self) -> float:
        """Alias for :meth:`evaluate` at a default branch."""
        return self.evaluate()

    # -- branch derivatives (makenewz's inner loop) --------------------------

    def branch_derivatives(
        self, branch: Branch, length: Optional[float] = None
    ) -> Tuple[float, float, float]:
        """``(lnL, d lnL/dt, d2 lnL/dt2)`` w.r.t. *branch*'s length.

        With *length* the derivatives are taken at that trial length
        instead of the stored one (what a Newton iteration evaluates).
        """
        t = branch.length if length is None else float(length)
        if t < 0:
            raise ValueError("branch length must be non-negative")
        u, v = branch.nodes
        u_clv, u_sc = self._side(u, branch)
        v_clv, v_sc = self._side(v, branch)
        p = self._project(t, 0)
        dp = self._project(t, 1)
        d2p = self._project(t, 2)
        n_patterns, n_cats, n = self.patterns.n_patterns, self._n_cats, self._n_states
        weights = self.patterns.weights
        pi = self._pi
        lnl = dlnl = d2lnl = 0.0
        for s in range(n_patterns):
            lik = d1 = d2 = 0.0
            for c in range(n_cats):
                mat = self._p_row(p, s, c)
                dmat = self._p_row(dp, s, c)
                d2mat = self._p_row(d2p, s, c)
                us, vs = u_clv[s][c], v_clv[s][c]
                f = f1 = f2 = 0.0
                for i in range(n):
                    left = us[i] * pi[i]
                    row, drow, d2row = mat[i], dmat[i], d2mat[i]
                    for j in range(n):
                        vj = vs[j]
                        f += left * row[j] * vj
                        f1 += left * drow[j] * vj
                        f2 += left * d2row[j] * vj
                cw = self._cat_weights[c]
                lik += cw * f
                d1 += cw * f1
                d2 += cw * f2
            if lik <= 0.0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
            g1 = d1 / lik
            w = float(weights[s])
            lnl += w * (
                math.log(lik) - (u_sc[s] + v_sc[s]) * LOG_SCALE_FACTOR
            )
            dlnl += w * g1
            d2lnl += w * (d2 / lik - g1 * g1)
        return lnl, dlnl, d2lnl
