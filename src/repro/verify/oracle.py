"""The reference oracle: the shared engine core on the ``reference``
backend.

Historically this module carried a complete second likelihood engine (a
322-line loop-based fork).  That fork is now collapsed into the layered
engine: the scalar loops live in
:class:`repro.phylo.engine.backends.reference.ReferenceBackend`, and
:class:`ReferenceEngine` here is the ordinary
:class:`~repro.phylo.engine.core.LikelihoodEngine` running on it —
*same core, two backends*, so the oracle surface can no longer drift
from the engine surface.

Two properties of the old standalone oracle are preserved deliberately:

* **Arithmetic.**  The reference backend replicates the old oracle's
  accumulation orders exactly (including its element-wise
  transition-matrix projection, bypassing the P-matrix cache via
  ``uses_pmat_cache = False``), so the committed golden corpus' oracle
  log likelihoods are bit-identical to the pre-refactor values.
* **Statelessness.**  The old oracle kept no caches, which made it
  immune to dirty-tracking bugs.  Sharing the core would silently give
  up that independence — a CLV-invalidation bug would cancel out of the
  differential diff.  :class:`ReferenceEngine` therefore drops every
  cached CLV before each public scoring call, recomputing the whole
  tree from scratch exactly like the old oracle did.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..phylo.alignment import PatternAlignment
from ..phylo.engine import LikelihoodEngine
from ..phylo.models import SubstitutionModel
from ..phylo.rates import RateModel
from ..phylo.tree import Branch, Node, Tree

__all__ = ["ReferenceEngine"]


class ReferenceEngine(LikelihoodEngine):
    """Loop-based oracle: the engine core on the ``reference`` backend.

    Parameters mirror the fast engine: a pattern alignment, a
    substitution model, an optional rate model (uniform, Gamma or CAT)
    and the tree to score.  Every public scoring call recomputes from
    scratch (no cache reuse between calls), keeping the oracle
    independent of the core's dirty-tracking.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        model: SubstitutionModel,
        rate_model: Optional[RateModel] = None,
        tree: Optional[Tree] = None,
    ):
        super().__init__(
            patterns, model, rate_model, tree, backend="reference"
        )
        # The standalone oracle owned its eigensystem; tests poison it
        # (``oracle._eigenvalues[0] = nan``) to exercise the NaN guard.
        # The reference backend re-projects from the model on every
        # call, so aliasing the model's arrays keeps that contract.
        self._eigenvalues = model._eigenvalues
        self._right = model._right
        self._left = model._left

    def newview(self, node: Node, entry: Branch
                ) -> Tuple["np.ndarray", "np.ndarray"]:
        if node.is_tip:
            raise ValueError("tips have no CLV")
        self._drop_all_clvs()
        return super().newview(node, entry)

    def evaluate(self, branch: Optional[Branch] = None) -> float:
        self._drop_all_clvs()
        return super().evaluate(branch)

    loglik = evaluate

    def branch_derivatives(
        self, branch: Branch, length: Optional[float] = None
    ) -> Tuple[float, float, float]:
        if length is not None and length < 0:
            raise ValueError("branch length must be non-negative")
        self._drop_all_clvs()
        return super().branch_derivatives(branch, length)
