"""Experiment harness: one entry point per paper table/figure."""

from .datasets import full_alignment, get_cat_trace, get_trace, quick_alignment
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    Row,
    ShapeCheck,
    run_all_experiments,
    run_experiment,
)
from .report import render_experiment, render_report

__all__ = [
    "full_alignment",
    "get_cat_trace",
    "get_trace",
    "quick_alignment",
    "EXPERIMENTS",
    "ExperimentResult",
    "Row",
    "ShapeCheck",
    "run_all_experiments",
    "run_experiment",
    "render_experiment",
    "render_report",
]
