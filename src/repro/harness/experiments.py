"""One entry point per paper table/figure, with paper-vs-measured rows.

Every experiment returns an :class:`ExperimentResult` whose rows pair
the paper's reported value with the reproduction's measured/simulated
value and whose *shape checks* encode the paper's qualitative claims
(who wins, roughly by how much, what grows with what).  EXPERIMENTS.md
is generated from these results; the benchmark suite asserts the shape
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..cell import CellBlade, DirectSignal, KernelInvocation, LocalStore
from ..cell.timing import DEFAULT_TIMING
from ..port import PortExecutor, paperdata as P, stage
from .datasets import get_trace

__all__ = [
    "Row",
    "ShapeCheck",
    "ExperimentResult",
    "run_experiment",
    "run_all_experiments",
    "EXPERIMENTS",
]


@dataclass(frozen=True)
class Row:
    """One paper-vs-measured data point."""

    label: str
    paper: Optional[float]
    measured: float

    @property
    def relative_error(self) -> Optional[float]:
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, evaluated."""

    claim: str
    passed: bool
    detail: str = ""


@dataclass
class ExperimentResult:
    """A completed experiment: rows + shape checks + commentary."""

    experiment: str
    title: str
    rows: List[Row]
    checks: List[ShapeCheck]
    notes: str = ""

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def assert_shape(self) -> None:
        failed = [c for c in self.checks if not c.passed]
        if failed:
            details = "; ".join(f"{c.claim} ({c.detail})" for c in failed)
            raise AssertionError(
                f"{self.experiment}: shape checks failed: {details}"
            )


def _executor(profile: str) -> PortExecutor:
    return PortExecutor(get_trace(profile))


def _cells_rows(executor: PortExecutor, table: str) -> List[Row]:
    rows = []
    for key, paper_value in P.TABLES[table].items():
        measured = executor.model.stage_total_s(table, *key)
        rows.append(Row(f"{key[0]}w/{key[1]}b", paper_value, measured))
    return rows


def _improvement(executor: PortExecutor, later: str, earlier: str,
                 key=(1, 1)) -> float:
    """Fractional time reduction of stage *later* vs stage *earlier*."""
    t_new = executor.model.stage_total_s(later, *key)
    t_old = executor.model.stage_total_s(earlier, *key)
    return 1.0 - t_new / t_old


# ---------------------------------------------------------------------------
# table experiments
# ---------------------------------------------------------------------------


def experiment_table1(profile: str = "quick") -> ExperimentResult:
    """Table 1: PPE baseline (a) and naive newview offload (b)."""
    ex = _executor(profile)
    rows = [
        Row(f"PPE-only {r.label}", r.paper, r.measured)
        for r in _cells_rows(ex, "table1a")
    ] + [
        Row(f"naive-offload {r.label}", r.paper, r.measured)
        for r in _cells_rows(ex, "table1b")
    ]
    checks = []
    for key in P.TABLES["table1a"]:
        a = ex.model.stage_total_s("table1a", *key)
        b = ex.model.stage_total_s("table1b", *key)
        checks.append(
            ShapeCheck(
                f"naive offload is slower than PPE-only at {key}",
                b > a,
                f"{b:.1f}s vs {a:.1f}s",
            )
        )
    ratio = (
        ex.model.stage_total_s("table1b", 1, 1)
        / ex.model.stage_total_s("table1a", 1, 1)
    )
    checks.append(
        ShapeCheck(
            "naive offload costs 2-3x the PPE baseline (1w/1b)",
            2.0 <= ratio <= 3.2,
            f"ratio {ratio:.2f}",
        )
    )
    return ExperimentResult(
        "table1",
        "Table 1: PPE-only vs naive newview() offload",
        rows,
        checks,
        notes=(
            "Merely moving newview() to an SPE hurts: the math-library "
            "exp(), mispredicted scaling conditionals, synchronous DMA "
            "and mailbox signalling dominate."
        ),
    )


def _stage_experiment(
    table: str,
    previous: str,
    title: str,
    claim_range: Tuple[float, float],
    claim_text: str,
    profile: str = "quick",
    extra_checks: Optional[Callable[[PortExecutor, List[ShapeCheck]], None]] = None,
) -> ExperimentResult:
    ex = _executor(profile)
    rows = _cells_rows(ex, table)
    checks = []
    lo, hi = claim_range
    for key in P.TABLES[table]:
        gain = _improvement(ex, table, previous, key)
        checks.append(
            ShapeCheck(
                f"{claim_text} at {key[0]}w/{key[1]}b",
                lo <= gain <= hi,
                f"reduction {gain * 100:.1f}% (paper band "
                f"{lo * 100:.0f}-{hi * 100:.0f}%)",
            )
        )
    if extra_checks is not None:
        extra_checks(ex, checks)
    return ExperimentResult(table, title, rows, checks)


def experiment_table2(profile: str = "quick") -> ExperimentResult:
    """Table 2: SDK exp() replaces the math-library exponential."""
    return _stage_experiment(
        "table2",
        "table1b",
        "Table 2: SDK exp() numerical implementation",
        (0.33, 0.45),
        "SDK exp() cuts 37-41% of execution time",
        profile,
    )


def experiment_table3(profile: str = "quick") -> ExperimentResult:
    """Table 3: integer-cast + vectorized scaling conditionals."""
    return _stage_experiment(
        "table3",
        "table2",
        "Table 3: casting/vectorizing the scaling conditional",
        (0.15, 0.25),
        "integer conditionals cut 19-21% of execution time",
        profile,
    )


def experiment_table4(profile: str = "quick") -> ExperimentResult:
    """Table 4: double buffering overlaps DMA with compute."""
    return _stage_experiment(
        "table4",
        "table3",
        "Table 4: double buffering (2 KB transfers)",
        (0.02, 0.08),
        "double buffering cuts 4-5% of execution time",
        profile,
    )


def experiment_table5(profile: str = "quick") -> ExperimentResult:
    """Table 5: SIMD vectorization of the FP loops."""

    def extra(ex: PortExecutor, checks: List[ShapeCheck]) -> None:
        cond_gain = _improvement(ex, "table3", "table2")
        vec_gain = _improvement(ex, "table5", "table4")
        checks.append(
            ShapeCheck(
                "control-statement vectorization beats FP vectorization "
                "(the paper's surprise)",
                cond_gain > vec_gain,
                f"conditionals {cond_gain * 100:.1f}% vs SIMD "
                f"{vec_gain * 100:.1f}%",
            )
        )

    return _stage_experiment(
        "table5",
        "table4",
        "Table 5: SIMD vectorization of the likelihood loops",
        (0.07, 0.16),
        "vectorization cuts 9-13% of execution time",
        profile,
        extra_checks=extra,
    )


def experiment_table6(profile: str = "quick") -> ExperimentResult:
    """Table 6: direct memory-to-memory PPE<->SPE communication."""

    def extra(ex: PortExecutor, checks: List[ShapeCheck]) -> None:
        gain_small = _improvement(ex, "table6", "table5", (1, 1))
        gain_big = _improvement(ex, "table6", "table5", (2, 32))
        checks.append(
            ShapeCheck(
                "the communication optimization scales with parallelism",
                gain_big > gain_small,
                f"1w/1b saves {gain_small * 100:.1f}%, 2w/32b saves "
                f"{gain_big * 100:.1f}%",
            )
        )

    return _stage_experiment(
        "table6",
        "table5",
        "Table 6: direct memory-to-memory communication",
        (0.01, 0.12),
        "direct communication cuts 2-11% of execution time",
        profile,
        extra_checks=extra,
    )


def experiment_table7(profile: str = "quick") -> ExperimentResult:
    """Table 7: makenewz() and evaluate() offloaded too."""

    def extra(ex: PortExecutor, checks: List[ShapeCheck]) -> None:
        spe = ex.model.stage_total_s("table7", 1, 1)
        ppe = ex.model.stage_total_s("table1a", 1, 1)
        checks.append(
            ShapeCheck(
                "one fully offloaded SPE beats the sequential PPE by ~25%",
                0.18 <= 1.0 - spe / ppe <= 0.32,
                f"{(1.0 - spe / ppe) * 100:.1f}% faster",
            )
        )
        gain_big = _improvement(ex, "table7", "table6", (2, 32))
        checks.append(
            ShapeCheck(
                "offloading gains grow with parallelism (up to ~47%)",
                gain_big >= _improvement(ex, "table7", "table6", (1, 1)) - 0.02,
                f"2w/32b saves {gain_big * 100:.1f}%",
            )
        )

    return _stage_experiment(
        "table7",
        "table6",
        "Table 7: all three kernels offloaded (single SPE module)",
        (0.28, 0.42),
        "offloading all three functions cuts 31-38%",
        profile,
        extra_checks=extra,
    )


def experiment_table8(profile: str = "quick") -> ExperimentResult:
    """Table 8: the dynamic MGPS scheduler."""
    ex = _executor(profile)
    rows = [
        Row(f"{b} bootstraps", paper_value, ex.model.mgps_total_s(b))
        for b, paper_value in P.TABLE8.items()
    ]
    checks = []
    llp_gain = 1.0 - ex.model.mgps_total_s(1) / ex.model.stage_total_s(
        "table7", 1, 1
    )
    checks.append(
        ShapeCheck(
            "LLP cuts ~36% of the one-bootstrap run",
            0.30 <= llp_gain <= 0.42,
            f"{llp_gain * 100:.1f}%",
        )
    )
    edtlp_gain = 1.0 - ex.model.mgps_total_s(32) / ex.model.stage_total_s(
        "table7", 2, 32
    )
    checks.append(
        ShapeCheck(
            "EDTLP+MGPS cuts up to ~63% at 32 bootstraps",
            0.55 <= edtlp_gain <= 0.70,
            f"{edtlp_gain * 100:.1f}%",
        )
    )
    scaling = ex.model.mgps_total_s(32) / ex.model.mgps_total_s(8)
    checks.append(
        ShapeCheck(
            "MGPS scales ~linearly in bootstraps (32b/8b ~ 4x)",
            3.5 <= scaling <= 4.5,
            f"ratio {scaling:.2f}",
        )
    )
    return ExperimentResult(
        "table8",
        "Table 8: dynamic multigrain scheduling (MGPS)",
        rows,
        checks,
        notes=(
            "MGPS runs eight EDTLP workers while task-level parallelism "
            "lasts and switches the stragglers to loop-level parallelism."
        ),
    )


def experiment_figure3(profile: str = "quick") -> ExperimentResult:
    """Figure 3: Cell vs IBM Power5 vs 2x Intel Xeon."""
    ex = _executor(profile)
    series = {s.platform: s for s in ex.figure3()}
    cell = series["Cell (MGPS)"]
    p5 = series["IBM Power5"]
    xeon = series["2x Intel Xeon (HT)"]
    rows = []
    for s in (cell, p5, xeon):
        for b, seconds in zip(s.bootstraps, s.seconds):
            rows.append(Row(f"{s.platform} @ {b}b", None, seconds))
    checks = []
    for i, b in enumerate(cell.bootstraps):
        checks.append(
            ShapeCheck(
                f"Cell beats both platforms at {b} bootstraps",
                cell.seconds[i] < p5.seconds[i]
                and cell.seconds[i] < xeon.seconds[i],
                f"cell {cell.seconds[i]:.0f}s, p5 {p5.seconds[i]:.0f}s, "
                f"xeon {xeon.seconds[i]:.0f}s",
            )
        )
    i_last = len(cell.bootstraps) - 1
    xeon_ratio = xeon.seconds[i_last] / cell.seconds[i_last]
    checks.append(
        ShapeCheck(
            "Cell beats the dual Xeon by more than a factor of two",
            xeon_ratio > 2.0,
            f"ratio {xeon_ratio:.2f} at {cell.bootstraps[i_last]} bootstraps",
        )
    )
    p5_ratio = p5.seconds[i_last] / cell.seconds[i_last]
    checks.append(
        ShapeCheck(
            "Cell beats the Power5 by ~9-10%",
            1.05 <= p5_ratio <= 1.15,
            f"ratio {p5_ratio:.3f}",
        )
    )
    return ExperimentResult(
        "figure3",
        "Figure 3: RAxML on Cell vs Power5 vs Xeon",
        rows,
        checks,
        notes=(
            "The Xeon curve uses two processors (four HT contexts), the "
            "modification the paper says favours the Xeon; Power5 runs "
            "four MPI ranks (2 cores x 2 SMT)."
        ),
    )


# ---------------------------------------------------------------------------
# profile & micro experiments
# ---------------------------------------------------------------------------


def experiment_profile(profile: str = "quick") -> ExperimentResult:
    """Section 5.2's gprof profile: call counts and function mix."""
    summary = get_trace(profile)
    ex = PortExecutor(summary)
    canonical = ex.model.canonical
    rows = [
        Row("newview calls / task (canonical)", P.NEWVIEW_CALLS,
            float(canonical.newview_count)),
        Row("newview share of PPE time", P.PROFILE_SHARES["newview"],
            P.PROFILE_SHARES["newview"]),  # calibration anchor
        Row("avg newview time at table-6 stage (us)", P.NEWVIEW_AVG_S * 1e6,
            ex.model.newview_kernel_s(stage("table6"))
            / canonical.newview_count * 1e6),
        Row("makenewz calls / task (canonical)", None,
            float(canonical.makenewz_count)),
        Row("evaluate calls / task (canonical)", None,
            float(canonical.evaluate_count)),
        Row("mean Newton iterations per makenewz", None,
            canonical.mean_makenewz_iterations),
        Row("tip-case fraction of newview calls", None,
            canonical.tip_case_fraction()),
    ]
    avg_us = (
        ex.model.newview_kernel_s(stage("table6"))
        / canonical.newview_count
        * 1e6
    )
    checks = [
        ShapeCheck(
            "newview dominates the kernel mix",
            canonical.newview_count
            > canonical.makenewz_count + canonical.evaluate_count,
            f"{canonical.newview_count} vs "
            f"{canonical.makenewz_count + canonical.evaluate_count}",
        ),
        ShapeCheck(
            "fine granularity: optimized newview averages ~71 us "
            "(within 2x)",
            35.0 <= avg_us <= 142.0,
            f"{avg_us:.0f} us",
        ),
        ShapeCheck(
            "makenewz converges in a few Newton iterations",
            1.0 <= canonical.mean_makenewz_iterations <= 12.0,
            f"{canonical.mean_makenewz_iterations:.1f}",
        ),
    ]
    return ExperimentResult(
        "profile",
        "Section 5.2: kernel profile of one 42_SC-class search",
        rows,
        checks,
        notes=(
            "The PPE share split (76.8/19.16/2.37%) is a calibration "
            "input, not a measurement; call counts and iteration "
            "statistics come from the reproduction's real search."
        ),
    )


def experiment_micro_comm() -> ExperimentResult:
    """Section 5.2.6 micro: mailbox vs direct signalling round trips.

    Measured on the discrete-event Cell components (not the analytic
    model), then compared with the cost-model constants derived from
    Tables 5/6.
    """
    ex = _executor("quick")
    model = ex.model

    def round_trip(use_mailbox: bool, repetitions: int = 1000) -> float:
        blade = CellBlade(n_chips=1)
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()
        reply = DirectSignal(blade.sim, name="reply")

        def ppe_side():
            for i in range(repetitions):
                if use_mailbox:
                    yield from spe.mailbox.ppe_write(i)
                    yield from spe.mailbox.ppe_read()
                else:
                    yield from spe.signal.write(i)
                    yield from reply.wait()

        def spe_side():
            while True:
                if use_mailbox:
                    yield from spe.mailbox.spe_read()
                    yield from spe.mailbox.spe_write("done")
                else:
                    yield from spe.signal.wait()
                    yield from reply.write("done")

        blade.sim.spawn(spe_side(), name="spe")
        blade.sim.spawn(ppe_side(), name="ppe")
        blade.sim.run(until=10.0)
        return blade.sim.now / repetitions

    mailbox_rt = round_trip(True)
    direct_rt = round_trip(False)
    rows = [
        Row("mailbox round trip (us, component sim)",
            model.comm_mailbox_per_offload * 1e6, mailbox_rt * 1e6),
        Row("direct-signal round trip (us, component sim)",
            model.comm_direct_per_offload * 1e6, direct_rt * 1e6),
    ]
    checks = [
        ShapeCheck(
            "direct signalling is several times cheaper than mailboxes",
            mailbox_rt / direct_rt > 2.0,
            f"ratio {mailbox_rt / direct_rt:.1f}",
        ),
        ShapeCheck(
            "component-level mailbox cost within 2.5x of the "
            "table-derived constant",
            0.4 <= mailbox_rt / model.comm_mailbox_per_offload <= 2.5,
            f"{mailbox_rt * 1e6:.2f} vs "
            f"{model.comm_mailbox_per_offload * 1e6:.2f} us",
        ),
    ]
    return ExperimentResult(
        "micro_comm",
        "Section 5.2.6 micro: PPE<->SPE signalling cost",
        rows,
        checks,
    )


def experiment_micro_dma() -> ExperimentResult:
    """Section 5.2.4 micro: double buffering hides the DMA wait."""
    times = {}
    for double_buffering in (False, True):
        blade = CellBlade(n_chips=1)
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()

        def run():
            # One strip-mined likelihood loop: 64 KB of vectors through
            # 2 KB buffers around 500 us of compute.
            invocation = KernelInvocation(
                "newview", compute_s=500e-6, dma_bytes_in=64 * 1024
            )
            yield from spe.execute(
                invocation, double_buffering=double_buffering,
                buffer_bytes=2 * 1024,
            )

        blade.sim.spawn(run(), name="kernel")
        times[double_buffering] = blade.sim.run()
    saved = 1.0 - times[True] / times[False]
    rows = [
        Row("synchronous strip-mining (us)", None, times[False] * 1e6),
        Row("double-buffered (us)", None, times[True] * 1e6),
        Row("DMA wait share hidden", P.SECTION52_FRACTIONS["dma_wait_share"],
            saved),
    ]
    checks = [
        ShapeCheck(
            "double buffering strictly reduces kernel time",
            times[True] < times[False],
            f"{times[True] * 1e6:.0f} vs {times[False] * 1e6:.0f} us",
        ),
    ]
    return ExperimentResult(
        "micro_dma",
        "Section 5.2.4 micro: DMA double buffering",
        rows,
        checks,
    )


def experiment_micro_localstore() -> ExperimentResult:
    """Section 5.2.7: the 117 KB module fits; 139 KB remain."""
    store = LocalStore(DEFAULT_TIMING.local_store_bytes)
    store.reserve("code", DEFAULT_TIMING.offloaded_code_bytes)
    free_kb = store.free_bytes / 1024
    rows = [
        Row("free local store after code load (KB)", 139.0, free_kb),
    ]
    # The 2 KB double-buffering pool must also fit with room to spare.
    store.reserve("stack", 16 * 1024)
    store.reserve("dma-buffers", 2 * 2 * 1024)
    checks = [
        ShapeCheck(
            "the three-function module leaves ~139 KB free",
            abs(free_kb - 139.0) < 1.0,
            f"{free_kb:.0f} KB",
        ),
        ShapeCheck(
            "stack + double buffers still fit",
            store.free_bytes > 0,
            f"{store.free_bytes / 1024:.0f} KB left",
        ),
    ]
    return ExperimentResult(
        "micro_localstore",
        "Section 5.2.7: local-store footprint of the offloaded module",
        rows,
        checks,
    )


def experiment_ablation(profile: str = "quick") -> ExperimentResult:
    """Single-flag ablations at the fully optimized endpoint."""
    ex = _executor(profile)
    results = ex.ablation()
    full = results["full"]
    rows = [Row("full optimization (1w/1b)", P.TABLES["table7"][(1, 1)], full)]
    for key, value in results.items():
        if key == "full":
            continue
        rows.append(Row(key, None, value))
    checks = [
        ShapeCheck(
            f"removing {key.replace('without_', '')} hurts",
            value > full,
            f"{value:.1f}s vs {full:.1f}s",
        )
        for key, value in results.items()
        if key != "full"
    ]
    return ExperimentResult(
        "ablation",
        "Ablation: each optimization removed alone from the full stack",
        rows,
        checks,
        notes=(
            "Not in the paper (which stages cumulatively); quantifies "
            "each optimization's standalone contribution."
        ),
    )


def experiment_schedulers_devs(profile: str = "quick") -> ExperimentResult:
    """Cross-check: discrete-event schedulers vs the analytic forms."""
    ex = _executor(profile)
    pairs = [
        ("EDTLP, 8 bootstraps", ex.model.edtlp_total_s(8),
         ex.edtlp_devs(8).makespan_s),
        ("LLP, 1 task x 8 SPEs", ex.model.llp_task_s(8),
         ex.llp_devs(1, 8).makespan_s),
        ("MGPS, 12 bootstraps", ex.model.mgps_total_s(12),
         ex.mgps_devs(12).makespan_s),
    ]
    rows = [Row(label, analytic, devs) for label, analytic, devs in pairs]
    checks = [
        ShapeCheck(
            f"{label}: DEVS within 15% of the analytic form",
            abs(devs - analytic) / analytic < 0.15,
            f"{devs:.1f} vs {analytic:.1f}s",
        )
        for label, analytic, devs in pairs
    ]
    return ExperimentResult(
        "schedulers_devs",
        "Discrete-event scheduler runs vs closed forms",
        rows,
        checks,
        notes=(
            "The DEVS runs model PPE queueing, SMT contention, context "
            "switches and master-worker messaging explicitly; agreement "
            "validates the closed forms used for the headline tables."
        ),
    )


def experiment_firstprinciples(profile: str = "quick") -> ExperimentResult:
    """Bottom-up SPU cycle estimates vs the table-derived components.

    The table-derived components include every sustained-execution
    effect (dependency stalls, loads/stores, dual-issue limits); the
    issue-rate estimator deliberately excludes them, so it must come in
    *below* the derived values, within an in-order-SPU-plausible
    inefficiency factor.
    """
    from ..cell import NewviewWorkload, estimate_newview

    ex = _executor(profile)
    model = ex.model
    n = float(model.canonical.newview_count)
    workload = NewviewWorkload()

    pairs = []  # (component label, bottom-up s/call, derived s/call)
    est_scalar = estimate_newview(workload, vectorized=False)
    est_vec = estimate_newview(workload, vectorized=True)
    pairs.append(("loops scalar", est_scalar.seconds("fp"),
                  model.nv_loops_scalar_s / n))
    pairs.append(("loops SIMD", est_vec.seconds("fp"),
                  model.nv_loops_vector_s / n))
    pairs.append(("exp() library",
                  estimate_newview(workload).seconds("exp"),
                  model.nv_exp_lib_s / n))
    pairs.append(("exp() SDK",
                  estimate_newview(workload, sdk_exp=True).seconds("exp"),
                  model.nv_exp_sdk_s / n))
    pairs.append(("conditional (float)",
                  est_scalar.seconds("conditional"),
                  model.nv_cond_float_s / n))
    pairs.append(("conditional (int)",
                  estimate_newview(workload, int_conditionals=True)
                  .seconds("conditional"),
                  model.nv_cond_int_s / n))

    rows = []
    checks = []
    for label, bottom_up, derived in pairs:
        rows.append(Row(f"{label}: derived (us/call)", None, derived * 1e6))
        rows.append(Row(f"{label}: issue-rate (us/call)", None,
                        bottom_up * 1e6))
        ratio = derived / bottom_up
        checks.append(
            ShapeCheck(
                f"{label}: derived within [0.7x, 15x] of the issue-rate "
                "floor",
                0.7 <= ratio <= 15.0,
                f"sustained/peak factor {ratio:.1f}",
            )
        )
    # Ordering preserved: the estimator must reproduce which component
    # dominates at each stage.
    unopt = estimate_newview(workload)
    checks.append(
        ShapeCheck(
            "issue-rate view agrees that library exp() dominates the "
            "unoptimized kernel",
            unopt.cycles["exp"] > unopt.cycles["fp"],
            f"exp {unopt.cycles['exp']:.0f} vs fp {unopt.cycles['fp']:.0f} "
            "cycles",
        )
    )
    return ExperimentResult(
        "firstprinciples",
        "Validation: SPU issue-rate estimates vs table-derived components",
        rows,
        checks,
        notes=(
            "Instruction-cost assumptions documented in "
            "repro/cell/spu_cost.py; the residual factor is sustained-"
            "vs-peak inefficiency on an in-order SPU."
        ),
    )


def experiment_static_devs(profile: str = "quick") -> ExperimentResult:
    """Cross-check: static-mapping DEVS runs vs the Tables 1-7 forms."""
    ex = _executor(profile)
    cases = [("table1b", 1, 1), ("table1b", 2, 8), ("table6", 2, 8),
             ("table7", 2, 8)]
    rows = []
    checks = []
    for table, workers, bootstraps in cases:
        analytic = ex.model.stage_total_s(table, workers, bootstraps)
        devs = ex.static_devs(table, workers, bootstraps)
        label = f"{table} {workers}w/{bootstraps}b"
        rows.append(Row(f"{label} (analytic)", None, analytic))
        rows.append(Row(f"{label} (DEVS)", None, devs.makespan_s))
        checks.append(
            ShapeCheck(
                f"{label}: DEVS within 10% of the closed form",
                abs(devs.makespan_s - analytic) / analytic < 0.10,
                f"{devs.makespan_s:.1f} vs {analytic:.1f}s",
            )
        )
    return ExperimentResult(
        "static_devs",
        "Discrete-event static mapping vs the Tables 1-7 closed forms",
        rows,
        checks,
        notes=(
            "The DEVS runs interleave PPE/SPE quanta on the simulator; "
            "SMT contention emerges from the shared PPE resource rather "
            "than a multiplier."
        ),
    )


def experiment_single_precision(profile: str = "quick") -> ExperimentResult:
    """Section 6 projection: SP arithmetic widens Cell's margin."""
    ex = _executor(profile)
    model = ex.model
    data = ex.single_precision_projection()
    full = stage("table7")
    kernel_dp = model.newview_kernel_s(full)
    kernel_sp = model.newview_kernel_s(full, single_precision=True)
    # The compute-bound regime: one task, loop-parallelized (Table 8's
    # 1-bootstrap row); the Power5 runs the same single task.
    cell_dp_1 = data["cell_dp"][0]
    cell_sp_1 = data["cell_sp"][0]
    p5_sp_1 = data["power5_sp"][0]
    p5_dp_1 = _executor(profile).figure3()[1].seconds[0]
    rows = [
        Row("SPE SP/DP arithmetic factor", None,
            model.sp_arithmetic_speedup()),
        Row("newview kernel DP -> SP (s/task)", None, kernel_sp),
        Row("Cell DP @ 1b (s)", None, cell_dp_1),
        Row("Cell SP @ 1b (s)", None, cell_sp_1),
        Row("Power5 SP @ 1b (s)", None, p5_sp_1),
        Row("Cell SP @ 128b (s)", None, data["cell_sp"][-1]),
        Row("Cell DP @ 128b (s)", None, data["cell_dp"][-1]),
    ]
    dp_margin = p5_dp_1 / cell_dp_1
    sp_margin = p5_sp_1 / cell_sp_1
    checks = [
        ShapeCheck(
            "SP widens the Cell-vs-Power5 margin in the compute-bound "
            "regime (the paper's claim)",
            sp_margin > dp_margin,
            f"{dp_margin:.2f}x (DP) -> {sp_margin:.2f}x (SP) at 1 bootstrap",
        ),
        ShapeCheck(
            "SP shrinks the SPE kernel by 2.5-4x",
            2.5 <= kernel_dp / kernel_sp <= 4.0,
            f"{kernel_dp / kernel_sp:.2f}x",
        ),
        ShapeCheck(
            "at high task parallelism SP gains vanish: EDTLP is "
            "PPE-bound (a modelled consequence the paper does not state)",
            abs(data["cell_sp"][-1] - data["cell_dp"][-1])
            < 0.05 * data["cell_dp"][-1],
            f"{data['cell_sp'][-1]:.0f}s vs {data['cell_dp'][-1]:.0f}s "
            "at 128 bootstraps",
        ),
    ]
    return ExperimentResult(
        "single_precision",
        "Extension: single-precision projection (paper section 6 remark)",
        rows,
        checks,
        notes=(
            "Not measured in the paper ('the use of single-precision "
            "arithmetic would widen the margin'); projected from the "
            "SPU issue-rate and SIMD-width ratios.  The projection also "
            "exposes a caveat: once eight EDTLP workers saturate the "
            "PPE, faster SPE kernels cannot shorten the makespan."
        ),
    )


def experiment_dual_cell(profile: str = "quick") -> ExperimentResult:
    """Extension: using both chips of the dual-Cell blade."""
    ex = _executor(profile)
    data = ex.dual_cell_projection()
    rows = [
        Row(f"{b}b: one chip (s)", None, one)
        for b, (one, _two) in data.items()
    ] + [
        Row(f"{b}b: two chips (s)", None, two)
        for b, (_one, two) in data.items()
    ]
    one128, two128 = data[128]
    one1, two1 = data[1]
    checks = [
        ShapeCheck(
            "two chips approach 2x at high task parallelism",
            1.9 <= one128 / two128 <= 2.05,
            f"{one128 / two128:.2f}x at 128 bootstraps",
        ),
        ShapeCheck(
            "a single bootstrap cannot use the second chip",
            abs(one1 - two1) < 1e-9,
            f"{one1:.1f}s either way",
        ),
    ]
    return ExperimentResult(
        "dual_cell",
        "Extension: both processors of the BSC dual-Cell blade",
        rows,
        checks,
        notes="The paper uses one processor of the blade (section 5).",
    )


def experiment_overlays(profile: str = "quick") -> ExperimentResult:
    """Section 5.2.4's avoided alternative: code overlays, priced."""
    ex = _executor(profile)
    model = ex.model
    base = model.stage_total_s("table7", 1, 1)
    fits = model.overlay_penalty_s(117 * 1024)
    oversized = model.overlay_penalty_s(300 * 1024)
    rows = [
        Row("117 KB module: overlay penalty (s/task)", 0.0, fits),
        Row("300 KB module: overlay penalty (s/task)", None, oversized),
        Row("300 KB module: task-time inflation", None,
            (base + oversized) / base),
    ]
    checks = [
        ShapeCheck(
            "the paper's 117 KB module needs no overlays",
            fits == 0.0,
            f"{fits:.3f}s",
        ),
        ShapeCheck(
            "an oversized module pays a real overlay tax (swap traffic "
            "plus the lost double buffering)",
            oversized > 0.05 * base,
            f"{oversized:.1f}s per task "
            f"({oversized / base * 100:.0f}% of the task)",
        ),
    ]
    return ExperimentResult(
        "overlays",
        "Extension: the code-overlay tax the paper engineered around",
        rows,
        checks,
        notes=(
            "Section 5.2.4: 'recursive function calls in general "
            "necessitate the use of manually managed code overlays'; "
            "the authors kept the module at 117 KB to avoid this cost."
        ),
    )


def experiment_cat_vs_gamma(profile: str = "quick") -> ExperimentResult:
    """Extension: CAT vs Gamma rate heterogeneity on the SPE."""
    from .datasets import get_cat_trace

    ex = _executor(profile)
    projection = ex.cat_projection(get_cat_trace())
    rows = [
        Row("Gamma task (s)", None, projection["gamma_task_s"]),
        Row("CAT task (s)", None, projection["cat_task_s"]),
        Row("CAT speedup", None, projection["speedup"]),
        Row("pattern-category ratio (CAT/Gamma)", 0.25,
            projection["patterncat_ratio"]),
    ]
    checks = [
        ShapeCheck(
            "CAT quarters the likelihood-loop volume",
            0.2 <= projection["patterncat_ratio"] <= 0.3,
            f"{projection['patterncat_ratio']:.3f}",
        ),
        ShapeCheck(
            "CAT speeds tasks up 2-4x (the known RAxML CAT/GAMMA gap)",
            2.0 <= projection["speedup"] <= 4.0,
            f"{projection['speedup']:.2f}x",
        ),
    ]
    return ExperimentResult(
        "cat_vs_gamma",
        "Extension: CAT vs Gamma rate heterogeneity (paper section 5.2.5)",
        rows,
        checks,
        notes=(
            "The paper's loops cover 'each distinct rate category of "
            "the CAT or Gamma models'; the CAT trace comes from a real "
            "CAT-mode search with per-site rates estimated on the "
            "parsimony starting tree."
        ),
    )


def experiment_alignment_scaling(profile: str = "quick") -> ExperimentResult:
    """Section 5.2.4's loop-size remark, quantified.

    Task time vs distinct-pattern count: the likelihood loops scale
    linearly with alignment length (the paper quotes up to 50,000
    iterations for large inputs) over a fixed per-call floor.
    """
    ex = _executor(profile)
    counts = (57, 114, 228, 912, 3648, 50_000 // 4)
    times = ex.alignment_length_projection(counts)
    rows = [
        Row(f"{c} patterns: task time (s)", None, times[c]) for c in counts
    ]
    # Affine check: time(4x patterns) < 4x time but > 2x time at the
    # canonical point (loops dominate but a floor exists).
    r_up = times[912] / times[228]
    checks = [
        ShapeCheck(
            "task time grows monotonically with alignment length",
            all(times[a] < times[b] for a, b in zip(counts, counts[1:])),
            "",
        ),
        ShapeCheck(
            "scaling is affine: 4x patterns costs 2-4x the time",
            2.0 <= r_up <= 4.0,
            f"{r_up:.2f}x",
        ),
        ShapeCheck(
            "tiny alignments are floor-bound (residual + exp + comm)",
            times[57] > 0.3 * times[228],
            f"{times[57]:.1f}s vs {times[228]:.1f}s",
        ),
    ]
    return ExperimentResult(
        "alignment_scaling",
        "Section 5.2.4: task time vs alignment length (loop trip count)",
        rows,
        checks,
        notes=(
            "The 12,500-pattern point corresponds to the paper's "
            "'up to 50,000 iterations' remark (50,000 pattern-category "
            "iterations at 4 Gamma categories)."
        ),
    )


def experiment_power_efficiency(profile: str = "quick") -> ExperimentResult:
    """Section 6's closing argument: performance per watt.

    The paper notes Cell's small absolute margin over the Power5 (9-10%)
    understates its advantage because Cell draws 27-43 W against the
    Power5's reported 150 W.  Energy = makespan x nominal power for the
    128-bootstrap Figure 3 endpoint.
    """
    ex = _executor(profile)
    series = {s.platform: s for s in ex.figure3()}
    cell_s = series["Cell (MGPS)"].seconds[-1]
    p5_s = series["IBM Power5"].seconds[-1]
    xeon_s = series["2x Intel Xeon (HT)"].seconds[-1]
    watts = P.POWER_WATTS
    cell_w = watts["cell_max"]  # worst case for Cell
    cell_energy = cell_s * cell_w / 3600.0  # watt-hours
    p5_energy = p5_s * watts["power5"] / 3600.0
    xeon_energy = xeon_s * 2 * watts["xeon_per_chip"] / 3600.0
    rows = [
        Row("Cell energy @128b (Wh, at 43 W)", None, cell_energy),
        Row("Power5 energy @128b (Wh, at 150 W)", None, p5_energy),
        Row("2x Xeon energy @128b (Wh)", None, xeon_energy),
        Row("Cell perf/W advantage over Power5", None,
            p5_energy / cell_energy),
        Row("Cell perf/W advantage over 2x Xeon", None,
            xeon_energy / cell_energy),
    ]
    checks = [
        ShapeCheck(
            "Cell's perf/W beats the Power5 by >3x even at its maximum "
            "power draw",
            p5_energy / cell_energy > 3.0,
            f"{p5_energy / cell_energy:.1f}x",
        ),
        ShapeCheck(
            "Cell's perf/W beats the dual Xeon by >5x",
            xeon_energy / cell_energy > 5.0,
            f"{xeon_energy / cell_energy:.1f}x",
        ),
    ]
    return ExperimentResult(
        "power_efficiency",
        "Section 6: performance per watt (the paper's closing argument)",
        rows,
        checks,
        notes=(
            "Power figures: paper-quoted 27-43 W (Cell, we charge the "
            "maximum) and 150 W (Power5); the Xeon TDP is a public "
            "figure, not from the paper."
        ),
    )


def experiment_edtlp_scaling(profile: str = "quick") -> ExperimentResult:
    """How EDTLP scales from 2 to 8 oversubscribed workers.

    Quantifies the paper's section 5.1 motivation ("two MPI processes
    do not expose enough task-level parallelism for all 8 SPEs") and
    the saturation that keeps the 8-worker speedup at ~2.65x instead of
    4x.  Uses the discrete-event scheduler.
    """
    ex = _executor(profile)
    results = {
        w: ex.edtlp_devs(8, n_workers=w) for w in (2, 4, 8)
    }
    rows = []
    for w, r in results.items():
        rows.append(Row(f"{w} workers: makespan (s)", None, r.makespan_s))
        rows.append(Row(f"{w} workers: mean SPE utilization", None,
                        r.mean_spe_utilization))
        rows.append(Row(f"{w} workers: PPE utilization", None,
                        r.ppe_utilization))
    speedup = results[2].makespan_s / results[8].makespan_s
    rows.append(Row("8-vs-2-worker speedup", None, speedup))
    checks = [
        ShapeCheck(
            "more workers always help",
            results[2].makespan_s > results[4].makespan_s
            > results[8].makespan_s,
            f"{results[2].makespan_s:.0f} > {results[4].makespan_s:.0f} > "
            f"{results[8].makespan_s:.0f}s",
        ),
        ShapeCheck(
            "8 workers fall well short of the ideal 4x over 2 workers "
            "(the paper's 2.65x observation)",
            2.0 <= speedup <= 3.3,
            f"{speedup:.2f}x",
        ),
        ShapeCheck(
            "SPE utilization drops as the PPE saturates",
            results[8].mean_spe_utilization
            < results[2].mean_spe_utilization,
            f"{results[2].mean_spe_utilization:.2f} -> "
            f"{results[8].mean_spe_utilization:.2f}",
        ),
    ]
    return ExperimentResult(
        "edtlp_scaling",
        "EDTLP worker-count scaling (paper sections 5.1/5.3)",
        rows,
        checks,
    )


def experiment_conclusion(profile: str = "quick") -> ExperimentResult:
    """Section 7's headline numbers, assembled from the pipeline.

    "Starting from an optimized version of RAxML for conventional
    uniprocessors and multiprocessors, we were able to boost performance
    on Cell by more than a factor of five and bring it to a higher level
    than the best performance achieved by the leading current multicore
    processors."
    """
    ex = _executor(profile)
    model = ex.model
    naive = model.stage_total_s("table1b", 1, 1)
    final_single = model.mgps_total_s(1)
    rows = [
        Row("naive Cell port, 1 bootstrap (s)", 106.37, naive),
        Row("fully optimized + MGPS, 1 bootstrap (s)", 17.6, final_single),
        Row("optimization-journey speedup", None, naive / final_single),
    ]
    p5 = None
    for series in ex.figure3():
        if series.platform == "IBM Power5":
            p5 = series
    cell128 = model.mgps_total_s(128)
    checks = [
        ShapeCheck(
            "the optimization journey gains more than a factor of five",
            naive / final_single > 5.0,
            f"{naive / final_single:.2f}x",
        ),
        ShapeCheck(
            "the final Cell port beats the leading multicore (Power5)",
            cell128 < p5.seconds[-1],
            f"{cell128:.0f}s vs {p5.seconds[-1]:.0f}s at 128 bootstraps",
        ),
        ShapeCheck(
            "every one of the seven optimizations contributes "
            "(cumulative staging strictly improves)",
            all(
                model.stage_total_s(later, 1, 1)
                < model.stage_total_s(earlier, 1, 1)
                for earlier, later in zip(
                    ["table1b", "table2", "table3", "table4", "table5",
                     "table6"],
                    ["table2", "table3", "table4", "table5", "table6",
                     "table7"],
                )
            ),
            "",
        ),
    ]
    return ExperimentResult(
        "conclusion",
        "Section 7: the paper's headline claims, end to end",
        rows,
        checks,
    )


#: Registry of all experiments (id -> callable).
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": experiment_table1,
    "table2": experiment_table2,
    "table3": experiment_table3,
    "table4": experiment_table4,
    "table5": experiment_table5,
    "table6": experiment_table6,
    "table7": experiment_table7,
    "table8": experiment_table8,
    "figure3": experiment_figure3,
    "profile": experiment_profile,
    "micro_comm": experiment_micro_comm,
    "micro_dma": experiment_micro_dma,
    "micro_localstore": experiment_micro_localstore,
    "ablation": experiment_ablation,
    "schedulers_devs": experiment_schedulers_devs,
    "firstprinciples": experiment_firstprinciples,
    "static_devs": experiment_static_devs,
    "power_efficiency": experiment_power_efficiency,
    "edtlp_scaling": experiment_edtlp_scaling,
    "alignment_scaling": experiment_alignment_scaling,
    "conclusion": experiment_conclusion,
    "single_precision": experiment_single_precision,
    "dual_cell": experiment_dual_cell,
    "overlays": experiment_overlays,
    "cat_vs_gamma": experiment_cat_vs_gamma,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn()


def run_all_experiments() -> List[ExperimentResult]:
    """Run the complete evaluation (EXPERIMENTS.md content)."""
    return [fn() for fn in EXPERIMENTS.values()]
