"""Canonical datasets and cached workload traces for the experiments.

Two trace profiles are provided:

* ``"quick"`` — a 12-taxon / 600-site dataset; the search finishes in
  under a second.  Because the cost model scales any trace to the
  paper's canonical task size (230,500 ``newview`` calls), the derived
  tables differ only marginally from the full profile.  This is the
  default for the benchmark suite.
* ``"full"`` — the synthetic ``42_SC`` stand-in (42 taxa, 1167 sites,
  ~239 patterns) with a reduced-effort search (a few seconds).

Traces are cached per (profile, seed) within the process, so a
benchmark session pays the search cost once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..phylo import (
    Alignment,
    PatternAlignment,
    SearchConfig,
    infer_tree,
    synthetic_dataset,
)
from ..port.trace import Tracer, TraceSummary

__all__ = [
    "quick_alignment",
    "full_alignment",
    "get_trace",
    "get_cat_trace",
    "TRACE_PROFILES",
]

_ALIGNMENT_CACHE: Dict[Tuple[str, int], Alignment] = {}
_TRACE_CACHE: Dict[Tuple[str, int], TraceSummary] = {}

#: Search-effort settings per trace profile.  ``batch_spr`` is pinned
#: off: the Cell-simulation workloads must reflect the paper's *serial*
#: newview/makenewz/evaluate mix, not the batched scorer's fused events.
TRACE_PROFILES = {
    "quick": dict(
        n_taxa=12,
        n_sites=600,
        search=SearchConfig(
            initial_radius=2, max_radius=3, max_rounds=3, batch_spr=False
        ),
    ),
    "full": dict(
        n_taxa=42,
        n_sites=1167,
        search=SearchConfig(
            initial_radius=1, max_radius=2, max_rounds=2, batch_spr=False
        ),
    ),
}


def quick_alignment(seed: int = 2) -> Alignment:
    """The small benchmark dataset (cached)."""
    return _alignment("quick", seed)


def full_alignment(seed: int = 42) -> Alignment:
    """The synthetic ``42_SC`` stand-in (cached)."""
    return _alignment("full", seed)


def _alignment(profile: str, seed: int) -> Alignment:
    key = (profile, seed)
    if key not in _ALIGNMENT_CACHE:
        settings = TRACE_PROFILES[profile]
        _ALIGNMENT_CACHE[key] = synthetic_dataset(
            n_taxa=settings["n_taxa"], n_sites=settings["n_sites"], seed=seed
        )
    return _ALIGNMENT_CACHE[key]


def get_cat_trace(seed: int = 2) -> TraceSummary:
    """A workload trace of a CAT-mode search on the quick dataset.

    CAT assigns each site one rate category (instead of integrating
    over four), shrinking the likelihood loops fourfold — the
    cat-vs-gamma ablation compares this trace's kernel shape against
    the Gamma trace.  Site rates are estimated on the parsimony
    starting tree, as RAxML does before switching to CAT.
    """
    key = ("quick-cat", seed)
    if key not in _TRACE_CACHE:
        import numpy as np

        from ..phylo import (
            CatRates,
            create_engine,
            estimate_site_rates,
            hill_climb,
            stepwise_addition_tree,
        )
        from ..phylo.inference import default_model_for

        patterns = _alignment("quick", seed).compress()
        rng = np.random.default_rng(seed)
        tree = stepwise_addition_tree(patterns, rng)
        model = default_model_for(patterns)
        site_rates = estimate_site_rates(patterns, model, tree)
        cat = CatRates(site_rates, n_categories=8)
        tracer = Tracer()
        engine = create_engine(patterns, model, cat, tree, tracer=tracer)
        try:
            hill_climb(engine, TRACE_PROFILES["quick"]["search"], rng)
        finally:
            engine.detach()
        _TRACE_CACHE[key] = tracer.summary()
    return _TRACE_CACHE[key]


def get_trace(profile: str = "quick", seed: int = 2) -> TraceSummary:
    """A cached per-task workload trace for the given profile.

    Runs one instrumented tree search (once per process) and returns
    its :class:`~repro.port.trace.TraceSummary`.
    """
    if profile not in TRACE_PROFILES:
        raise KeyError(f"unknown trace profile {profile!r}")
    key = (profile, seed)
    if key not in _TRACE_CACHE:
        alignment = _alignment(profile, seed)
        tracer = Tracer()
        infer_tree(
            alignment.compress(),
            config=TRACE_PROFILES[profile]["search"],
            seed=seed,
            tracer=tracer,
        )
        _TRACE_CACHE[key] = tracer.summary()
    return _TRACE_CACHE[key]
