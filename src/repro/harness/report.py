"""Text rendering of experiment results (paper-vs-measured tables)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional

from .experiments import ExperimentResult, run_all_experiments

__all__ = [
    "render_experiment",
    "render_report",
    "render_markdown",
    "render_cluster_status",
    "merge_bench_section",
    "main",
]


def merge_bench_section(path, section: str, payload: dict) -> dict:
    """Merge one named section into a committed benchmark JSON file.

    The shared writer behind every ``BENCH_*.json`` producer: reads the
    committed document (tolerating a missing file), replaces exactly
    ``section``, and rewrites the whole file through
    :func:`repro.cluster.checkpoint.atomic_write` so a crash mid-write
    can never tear a committed benchmark artifact.  Returns the merged
    document.
    """
    from ..cluster.checkpoint import atomic_write

    path = Path(path)
    committed = json.loads(path.read_text()) if path.is_file() else {}
    committed[section] = payload
    atomic_write(str(path), json.dumps(committed, indent=2) + "\n")
    return committed


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def render_experiment(result: ExperimentResult) -> str:
    """One experiment as a fixed-width text block."""
    lines: List[str] = []
    lines.append(f"== {result.title} [{result.experiment}] ==")
    if result.notes:
        lines.append(f"   {result.notes}")
    width = max((len(r.label) for r in result.rows), default=10) + 2
    lines.append(
        f"   {'metric'.ljust(width)}{'paper':>12}{'measured':>12}{'delta':>9}"
    )
    for row in result.rows:
        err = row.relative_error
        delta = f"{err * 100:+.1f}%" if err is not None else "-"
        lines.append(
            f"   {row.label.ljust(width)}{_fmt(row.paper):>12}"
            f"{_fmt(row.measured):>12}{delta:>9}"
        )
    for check in result.checks:
        mark = "PASS" if check.passed else "FAIL"
        detail = f" — {check.detail}" if check.detail else ""
        lines.append(f"   [{mark}] {check.claim}{detail}")
    return "\n".join(lines)


def render_report(results: Optional[Iterable[ExperimentResult]] = None) -> str:
    """The full evaluation report."""
    if results is None:
        results = run_all_experiments()
    results = list(results)
    blocks = [render_experiment(r) for r in results]
    passed = sum(1 for r in results if r.all_passed)
    header = (
        "RAxML-Cell reproduction — full evaluation\n"
        f"{passed}/{len(results)} experiments pass all shape checks\n"
    )
    return header + "\n\n".join(blocks) + "\n"


def render_markdown(results: Optional[Iterable[ExperimentResult]] = None) -> str:
    """The full evaluation as GitHub-flavoured markdown.

    ``python -m repro.harness.report --markdown`` regenerates the
    numeric sections of EXPERIMENTS.md.
    """
    if results is None:
        results = run_all_experiments()
    results = list(results)
    out: List[str] = []
    passed = sum(1 for r in results if r.all_passed)
    out.append("# RAxML-Cell reproduction — evaluation report")
    out.append("")
    out.append(
        f"**{passed}/{len(results)} experiments pass all "
        f"{sum(len(r.checks) for r in results)} shape checks.**"
    )
    for result in results:
        out.append("")
        out.append(f"## {result.title}")
        if result.notes:
            out.append("")
            out.append(f"> {result.notes}")
        out.append("")
        out.append("| metric | paper | measured | delta |")
        out.append("|---|---|---|---|")
        for row in result.rows:
            err = row.relative_error
            delta = f"{err * 100:+.1f}%" if err is not None else "—"
            out.append(
                f"| {row.label} | {_fmt(row.paper)} | "
                f"{_fmt(row.measured)} | {delta} |"
            )
        out.append("")
        for check in result.checks:
            mark = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            out.append(f"- {mark} {check.claim}{detail}")
    out.append("")
    return "\n".join(out)


def render_cluster_status(journal_path: str) -> str:
    """Summarize a :mod:`repro.cluster` run journal as a text block.

    Backs ``repro-phylo cluster status``: progress, fault/retry
    accounting, shard topology for manifest-backed journals (shard
    count, compaction generation, steal count, per-shard record
    counts), the merged per-task engine perf counters (PR 1's
    cache/arena statistics, now visible for distributed runs), and the
    streaming partial results (running best tree and majority-rule
    consensus) that are servable before the run completes.
    """
    from ..cluster.runner import job_status

    status = job_status(journal_path)
    state = status["state"]
    lines: List[str] = [f"== cluster run {journal_path} =="]
    if status["spec"] is not None:
        spec = status["spec"]
        lines.append(
            f"   job: {spec.n_inferences} inference(s) + "
            f"{spec.n_bootstraps} bootstrap(s), seed {spec.seed}, "
            f"batch size {spec.batch_size}"
        )
    bootstop = status.get("bootstop")
    lines.append(
        f"   progress: inferences {status['n_inferences_done']}"
        f"/{status['n_inferences_total'] or '?'}, "
        f"bootstraps {status['n_bootstraps_done']}"
        f"/{status['n_bootstraps_total'] or '?'}"
        f"{' (autoMRE)' if bootstop else ''}"
        f"{'  [finished]' if status['finished'] else ''}"
    )
    if bootstop:
        # The replicate count is a budget, not a promise: report the
        # convergence state instead of implying a fixed campaign size.
        if bootstop["stop_at"] is not None:
            metric = bootstop.get("metric")
            metric_text = (f", metric {metric:.4f} <= "
                           f"{bootstop['threshold']:.4f}"
                           if metric is not None else "")
            lines.append(
                f"   bootstopping: converged at {bootstop['stop_at']}"
                f"/{bootstop['requested']} requested replicate(s)"
                f"{metric_text}"
            )
        else:
            lines.append(
                f"   bootstopping: not yet converged "
                f"({status['n_bootstraps_done']}"
                f"/{bootstop['requested']} budgeted, checks every "
                f"{bootstop['check_every']}, threshold "
                f"{bootstop['threshold']:.4f})"
            )
    lines.append(
        f"   faults: {len(status['retries'])} retr"
        f"{'y' if len(status['retries']) == 1 else 'ies'}, "
        f"{len(status['worker_deaths'])} worker death(s), "
        f"{state.resumes} resume(s)"
    )
    shards = status.get("shards")
    if shards:
        lines.append(
            f"   shards: {shards['n_shards']} WAL shard(s), "
            f"generation {shards['generation']}, "
            f"{shards['compactions']} compaction(s), "
            f"{len(status['steals'])} steal(s)"
        )
        counts = shards.get("records") or {}
        if counts:
            per_file = ", ".join(f"{name}={counts[name]}"
                                 for name in sorted(counts))
            snapshot = shards.get("snapshot_records")
            snapshot_text = (f" (+{snapshot} snapshot record(s))"
                             if snapshot else "")
            lines.append(f"   shard records: {per_file}{snapshot_text}")
    elif status.get("steals"):
        lines.append(f"   steals: {len(status['steals'])}")
    if state.corrupt_records:
        lines.append(
            f"   corrupt journal records skipped: {state.corrupt_records} "
            f"(torn writes / CRC failures / malformed payloads)"
        )
    if status["best"] is not None:
        lines.append(
            f"   best so far: replicate {status['best']['replicate']}, "
            f"lnL = {status['best']['log_likelihood']:.4f}"
        )
    for split, support in sorted(status["supports"].items(),
                                 key=lambda kv: (-kv[1], sorted(kv[0]))):
        lines.append(f"   support {support * 100:5.1f}%  "
                     f"{{{','.join(sorted(split))}}}")
    if status["consensus_newick"]:
        lines.append(f"   majority-rule consensus: "
                     f"{status['consensus_newick']}")
    perf = status["perf"]
    if perf:
        interesting = [
            "newview_calls", "pmat_hits", "pmat_misses",
            "arena_acquires", "spr_batch_candidates",
        ]
        shown = {k: perf[k] for k in interesting if k in perf}
        if shown:
            lines.append(
                "   engine counters: "
                + ", ".join(f"{k}={v}" for k, v in shown.items())
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if "--markdown" in argv:
        print(render_markdown())
    else:
        print(render_report())


if __name__ == "__main__":  # pragma: no cover
    main()
