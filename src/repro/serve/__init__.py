"""Inference-as-a-service over the cluster layer (``repro-phylo serve``).

The paper's pipeline ends where most real deployments begin: somebody
has to *operate* tree inference for many users.  This package wraps
:mod:`repro.cluster` in a small asyncio HTTP/JSON service (stdlib only)
with three service-grade behaviours layered on the cluster's existing
determinism contract:

* :mod:`~repro.serve.cache` — content-addressed result caching keyed by
  the canonical digest of ``(pattern-compressed alignment, model
  config, seed)``; duplicate submissions return instantly without
  scheduling a single cluster task;
* :mod:`~repro.serve.fairness` — multi-tenant dispatch: per-client FIFO
  queues, per-client inflight caps, strict priorities with
  round-robin tie-breaking, and bounded queue-depth watermarks that
  surface as ``429 Too Many Requests`` + ``Retry-After`` backpressure;
* :mod:`~repro.serve.jobstore` — durable job records + the
  transport-free :class:`~repro.serve.jobstore.JobService` core; a
  server killed mid-job (the ``serve.server_kill`` chaos site) restarts
  and resumes to a bit-identical result;
* :mod:`~repro.serve.sse` — live progress streaming by tailing the run
  journal as server-sent events;
* :mod:`~repro.serve.resilience` — admission-time memory preflight
  (``413 job_too_large``), the drain/deadline error vocabulary, and
  re-exports of the cluster cancellation API;
* :mod:`~repro.serve.app` — the asyncio HTTP front-end and routes,
  including ``/readyz`` readiness and SIGTERM-triggered graceful drain
  (in-flight jobs checkpoint within a bounded grace and resume
  bit-identically on the next start).

autoMRE bootstopping itself lives in :mod:`repro.cluster.bootstop` (it
is a cluster aggregation policy, not a service feature); the service
exposes it through the ``bootstop`` key of a submission.
"""

from .api import ApiError, parse_submission, spec_from_request
from .app import ServeApp, serve_forever
from .cache import ResultCache, canonical_alignment_key, job_digest
from .fairness import FairScheduler, QueuedJob, QueueFullError
from .jobstore import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
    JobService,
    JobStore,
    digest_of,
    result_payload,
)
from .resilience import (
    CancelToken,
    DrainingError,
    ResourceLimitError,
    TaskCancelled,
    estimate_job_memory_mb,
    preflight,
)
from .sse import JournalTail, format_sse, tail_to_completion

__all__ = [
    "ApiError",
    "parse_submission",
    "spec_from_request",
    "ServeApp",
    "serve_forever",
    "ResultCache",
    "canonical_alignment_key",
    "job_digest",
    "FairScheduler",
    "QueuedJob",
    "QueueFullError",
    "digest_of",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JobRecord",
    "JobService",
    "JobStore",
    "result_payload",
    "CancelToken",
    "DrainingError",
    "ResourceLimitError",
    "TaskCancelled",
    "estimate_job_memory_mb",
    "preflight",
    "JournalTail",
    "format_sse",
    "tail_to_completion",
]
