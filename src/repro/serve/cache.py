"""Content-addressed result cache keyed by a canonical job digest.

Duplicate submissions are the common case for a popular service (the
same alignment pasted by many users, the same course dataset submitted
every semester), and a finished phylogenetic analysis is a pure
function of ``(alignment patterns, model config, seed)`` — so results
are cached under a digest of exactly that triple and duplicate jobs
return instantly without scheduling a single cluster task.

The canonicalizer is the pattern-compression step the engine already
runs (:meth:`repro.phylo.alignment.Alignment.compress`), pushed to its
identity-free fixed point:

* taxa are sorted by name (row order in the submitted file is
  presentation, not content);
* pattern columns are re-read under the sorted taxon order and
  deduplicated + lexicographically sorted (site order and duplicated
  sites are presentation too — resubmitting an alignment with a column
  repeated collapses to the same distinct-pattern set, which is the
  demand-shedding behaviour a service wants for near-identical spam).

The equivalence class a digest names is therefore the *distinct
pattern set*: a one-character edit that introduces a pattern column not
already present (the overwhelmingly common case) changes the digest,
while an edit or duplication that merely re-weights existing patterns
lands in the same class and is served the class's cached result — the
deliberate flip side of collapsing duplicated sites.

The model/search half of the key comes from the canonical JSON of the
:class:`~repro.cluster.jobs.JobSpec` minus its execution details
(``alignment_path``, ``batch_size``, ``deadline_s``): worker count,
batching, scheduling, and deadlines are invisible in the result by the
cluster's determinism contract (a *degraded* deadline salvage is never
cached at all), so they must be invisible in the cache key too.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

import numpy as np

from ..cluster.checkpoint import atomic_write
from ..cluster.jobs import JobSpec
from ..phylo.alignment import PatternAlignment

__all__ = [
    "canonical_alignment_key",
    "job_digest",
    "ResultCache",
]

#: Spec fields that never influence the result (scheduling knobs, the
#: submission-local file path, and the wall-clock deadline — execution
#: *policy*, not content) and are excluded from the digest.  A job
#: submitted with a deadline therefore hits the cache entry of the same
#: job without one; the reverse only holds when the deadlined run
#: finished un-degraded, because degraded results are never cached.
_EXECUTION_ONLY_FIELDS = ("alignment_path", "batch_size", "deadline_s")


def canonical_alignment_key(patterns: PatternAlignment) -> bytes:
    """Canonical bytes for an alignment's identity-free content.

    Taxon order, site order, and site multiplicity are all normalized
    away; what remains is the sorted taxon list plus the sorted set of
    distinct pattern columns — the content that determines which trees
    the search space contains.
    """
    order = np.argsort(np.array(patterns.taxa))
    rows = patterns.patterns[order]  # (n_taxa, n_patterns), sorted taxa
    # Distinct columns, lexicographically sorted under the canonical
    # taxon order (np.unique sorts and dedups in one pass).
    columns = np.unique(np.ascontiguousarray(rows.T), axis=0)
    taxa = sorted(patterns.taxa)
    header = f"{len(taxa)}:{columns.shape[0]}:".encode()
    names = "\x00".join(taxa).encode()
    return header + names + b"\x00" + columns.tobytes()


def job_digest(patterns: PatternAlignment, spec: JobSpec) -> str:
    """The content address of one job's result (hex SHA-256)."""
    spec_payload = spec.to_json()
    for field in _EXECUTION_ONLY_FIELDS:
        spec_payload.pop(field, None)
    digest = hashlib.sha256()
    digest.update(canonical_alignment_key(patterns))
    digest.update(b"\x00")
    digest.update(json.dumps(spec_payload, sort_keys=True).encode())
    return digest.hexdigest()


class ResultCache:
    """One JSON result file per digest, written atomically.

    ``get``/``put`` are crash-safe by construction: a result file either
    exists in full (the :func:`~repro.cluster.checkpoint.atomic_write`
    temp+fsync+rename dance) or not at all, so a server killed mid-write
    can never serve a torn result after restart.
    """

    def __init__(self, root: str):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def contains(self, digest: str) -> bool:
        """Existence probe that leaves the hit/miss counters untouched.

        Used by admission control to decide whether a submission will
        be served from cache (and may therefore bypass the queue-depth
        watermarks) without double-counting the later authoritative
        :meth:`get`.
        """
        return os.path.exists(self.path(digest))

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        try:
            with open(self.path(digest)) as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except ValueError:
            # A corrupt cache entry is a miss, never an error: the job
            # simply recomputes and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Dict[str, object]) -> str:
        path = self.path(digest)
        atomic_write(path, json.dumps(payload, sort_keys=True) + "\n")
        return path

    def counters(self) -> Dict[str, int]:
        return {"cache_hits": self.hits, "cache_misses": self.misses}
