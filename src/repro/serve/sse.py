"""Server-sent-events streaming of a job's run journal.

The cluster journal is already an append-only event log, so live
progress streaming is just a tail: :class:`JournalTail` incrementally
reads complete lines from the journal file (tracking a byte offset, so
each poll costs one ``seek`` + the new bytes), CRC-verifies them with
the journal's own :func:`~repro.cluster.checkpoint.decode_record`, and
the HTTP layer frames each record as one SSE event::

    id: 4
    event: replicate_done
    data: {"event": "replicate_done", "time": ..., "payload": {...}}

A line without a trailing newline is a write in progress (or a torn
tail from a killed server) and is never consumed; a line that fails its
CRC is surfaced as a ``journal_corrupt`` event rather than silently
dropped, because a streaming client deserves to know its event ids have
a gap.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..cluster.checkpoint import decode_record

__all__ = ["JournalTail", "format_sse", "tail_to_completion"]


def format_sse(record: Dict[str, object], event_id: int) -> str:
    """Frame one journal record as an SSE event block."""
    data = json.dumps(record, sort_keys=True)
    event = record.get("event", "message")
    return f"id: {event_id}\nevent: {event}\ndata: {data}\n\n"


class JournalTail:
    """Incremental reader over one journal file.

    The tail is resilient to the file not existing yet (the job may
    still be queued when a client connects to its event stream) and to
    the writer being killed mid-line; it simply yields nothing until
    complete records appear.
    """

    def __init__(self, path: str, start_id: int = 0):
        self.path = os.fspath(path)
        self._offset = 0
        self._partial = b""
        self.next_id = start_id
        self.corrupt = 0

    def poll(self) -> List[Dict[str, object]]:
        """Return all complete, CRC-valid records appended since last poll."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        self._offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        # The final element is either empty (chunk ended on a newline)
        # or a half-written record: keep it buffered, never decode it.
        self._partial = lines.pop()
        records: List[Dict[str, object]] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = decode_record(line.decode("utf-8", "replace"))
            except ValueError:
                self.corrupt += 1
                record = {"event": "journal_corrupt",
                          "detail": "skipped a record that failed decode/CRC"}
            records.append(record)
        return records

    def events(self) -> List[str]:
        """Poll and frame the new records as SSE blocks."""
        blocks = []
        for record in self.poll():
            blocks.append(format_sse(record, self.next_id))
            self.next_id += 1
        return blocks

    @staticmethod
    def is_terminal(record: Dict[str, object]) -> bool:
        """True for events after which no more journal lines will come."""
        return record.get("event") == "run_finished"


def tail_to_completion(path: str, poll_interval: float = 0.1,
                       timeout: Optional[float] = None) -> List[str]:
    """Blocking convenience: collect SSE blocks until ``run_finished``.

    Used by tests and the smoke example; the asyncio app does the same
    loop with ``await asyncio.sleep`` instead.
    """
    import time

    tail = JournalTail(path)
    blocks: List[str] = []
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        records = tail.poll()
        for record in records:
            blocks.append(format_sse(record, tail.next_id))
            tail.next_id += 1
            if JournalTail.is_terminal(record):
                return blocks
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(f"journal {path} did not finish in time")
        time.sleep(poll_interval)
