"""Durable job records and the synchronous service core.

The store is the crash-safe half of the service: every job record is a
single JSON file written atomically, alignments are stored
content-addressed (one copy no matter how many clients submit the same
data), and each job's cluster journal lives under a stable path derived
from the job id.  A server killed at *any* point — the
``serve.server_kill`` chaos site fires between two journal appends of a
running job — restarts by re-enqueueing its ``queued``/``running``
records and resuming their journals, and the cluster's bit-identical
resume contract makes the final results indistinguishable from an
uninterrupted server.

:class:`JobService` is the transport-free orchestration core: submit →
fair-schedule → execute → cache.  The asyncio HTTP front-end
(:mod:`repro.serve.app`) drives it through an executor; tests and the
chaos campaign drive it directly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..chaos import injector as _chaos
from ..chaos.plan import SERVE_SERVER_KILL
from ..cluster.checkpoint import atomic_write, replay
from ..cluster.jobs import JobSpec
from ..cluster.queue import ClusterConfig
from ..cluster.runner import job_status, resume_job, run_job
from ..phylo.alignment import Alignment, parse_alignment
from .cache import ResultCache, job_digest
from .fairness import FairScheduler
from .resilience import (
    REASON_DRAIN,
    CancelToken,
    DrainingError,
    TaskCancelled,
    preflight,
)

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JobRecord",
    "JobStore",
    "JobService",
    "digest_of",
    "load_alignment_text",
    "result_payload",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


def load_alignment_text(text: str, aa: bool = False):
    """Parse submitted FASTA/PHYLIP text into an alignment object.

    Routed through the hardened entry point
    (:func:`repro.phylo.alignment.parse_alignment`), so any malformed
    submission surfaces as a typed
    :class:`~repro.phylo.alignment.AlignmentError` with a stable
    ``code`` — never a bare ``IndexError``/``ValueError`` from deep in
    a parser.
    """
    if aa:
        from ..phylo.protein import ProteinAlignment

        cls = ProteinAlignment
    else:
        cls = Alignment
    return parse_alignment(text, cls=cls)


def digest_of(alignment_text: str, spec: JobSpec) -> str:
    """The content-addressed digest of a submission (parses once)."""
    patterns = load_alignment_text(alignment_text, aa=spec.aa).compress()
    return job_digest(patterns, spec)


@dataclass
class JobRecord:
    """One submission's durable state (a single atomic JSON file)."""

    job_id: str
    client: str
    priority: int
    digest: str
    spec: JobSpec
    state: str = JOB_QUEUED
    cached: bool = False
    submitted_seq: int = 0
    error: Optional[str] = None
    created: float = 0.0
    updated: float = 0.0
    #: A deadline-salvaged partial result: served, never cached.
    degraded: bool = False

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["spec"] = self.spec.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JobRecord":
        data = dict(payload)
        data["spec"] = JobSpec.from_json(data["spec"])
        return cls(**data)


def result_payload(digest: str, spec: JobSpec, journal_path: str
                   ) -> Dict[str, object]:
    """Assemble the servable result from a finished job's journal.

    Everything here is a pure function of the journalled payloads, so
    a result computed after a crash-resume cycle is byte-identical to
    one from an uninterrupted run — the chaos campaign compares the
    canonical JSON of this payload across runs.
    """
    status = job_status(journal_path)
    supports = sorted(
        ([sorted(split), value] for split, value in status["supports"].items()),
        key=lambda item: item[0],
    )
    consensus_supports = sorted(
        ([sorted(split), value]
         for split, value in (status["consensus_supports"] or {}).items()),
        key=lambda item: item[0],
    )
    best = status["best"] or {}
    return {
        "digest": digest,
        "best_newick": best.get("newick"),
        "best_log_likelihood": best.get("log_likelihood"),
        "n_inferences": status["n_inferences_done"],
        "n_bootstraps_requested": spec.n_bootstraps,
        "n_bootstraps_used": status["n_bootstraps_done"],
        "bootstop": status["bootstop"],
        "supports": supports,
        "consensus_newick": status["consensus_newick"],
        "consensus_supports": consensus_supports,
        "perf": status["perf"],
        "degraded": bool(status["degraded"]),
    }


class JobStore:
    """Filesystem layout + atomic persistence of the service state.

    ::

        root/
          cache/<digest>.json        # content-addressed results
          alignments/<digest>.txt    # content-addressed submissions
          jobs/<job_id>.json         # one record per submission
          journals/<job_id>.jsonl    # the job's cluster run journal
    """

    def __init__(self, root: str, clock: Optional[Callable[[], float]] = None):
        self.root = os.fspath(root)
        self._clock = clock if clock is not None else time.time
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.journals_dir = os.path.join(self.root, "journals")
        self.alignments_dir = os.path.join(self.root, "alignments")
        for path in (self.jobs_dir, self.journals_dir, self.alignments_dir):
            os.makedirs(path, exist_ok=True)
        self.cache = ResultCache(os.path.join(self.root, "cache"))
        self.runs_executed = 0
        self.degraded_served = 0
        # Engine degradation totals accumulated from finished jobs'
        # perf counters — surfaced by /healthz so an operator can see
        # numerical-fault pressure without scraping journals.
        self.engine_counters: Dict[str, int] = {
            "fault_recoveries": 0, "degraded_evaluations": 0,
        }
        self._next_seq = 1 + max(
            (r.submitted_seq for r in self.load_all()), default=0
        )

    # -- records ------------------------------------------------------------

    def record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.journals_dir, f"{job_id}.jsonl")

    def alignment_path(self, digest: str) -> str:
        return os.path.join(self.alignments_dir, f"{digest}.txt")

    def save(self, record: JobRecord) -> None:
        record.updated = self._clock()
        atomic_write(self.record_path(record.job_id),
                     json.dumps(record.to_json(), sort_keys=True) + "\n")

    def get(self, job_id: str) -> Optional[JobRecord]:
        try:
            with open(self.record_path(job_id)) as fh:
                return JobRecord.from_json(json.load(fh))
        except FileNotFoundError:
            return None

    def load_all(self) -> List[JobRecord]:
        records = []
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except FileNotFoundError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            with open(os.path.join(self.jobs_dir, name)) as fh:
                records.append(JobRecord.from_json(json.load(fh)))
        records.sort(key=lambda r: r.submitted_seq)
        return records

    # -- submission ---------------------------------------------------------

    def submit(self, alignment_text: str, spec: JobSpec, client: str,
               priority: int = 10, digest: Optional[str] = None
               ) -> Tuple[JobRecord, bool]:
        """Create a job record; returns ``(record, cache_hit)``.

        On a cache hit the record is born ``done`` with ``cached=True``
        and no cluster work is ever scheduled for it — the digest
        already addresses a finished result.  Callers that computed the
        digest already (e.g. for an admission-control check) pass it in
        to skip the second alignment parse.
        """
        if digest is None:
            digest = digest_of(alignment_text, spec)
        alignment_file = self.alignment_path(digest)
        if not os.path.exists(alignment_file):
            atomic_write(alignment_file, alignment_text)
        seq = self._next_seq
        self._next_seq += 1
        hit = self.cache.get(digest) is not None
        record = JobRecord(
            job_id=f"j{seq:06d}-{digest[:10]}",
            client=client,
            priority=priority,
            digest=digest,
            spec=spec,
            state=JOB_DONE if hit else JOB_QUEUED,
            cached=hit,
            submitted_seq=seq,
            created=self._clock(),
        )
        self.save(record)
        return record, hit

    # -- execution ----------------------------------------------------------

    def _run_clock(self) -> Callable[[], float]:
        """The journal clock, instrumented as the server-kill site.

        The site is probed once per journal append, i.e. between two
        durable records of the running job — exactly where a real
        process death lands.  The raised
        :class:`~repro.chaos.injector.InjectedCrash` propagates out of
        the run machinery (which shuts its workers down on the way) and
        models the serving process dying mid-job.
        """
        base = self._clock

        def clock() -> float:
            if _chaos._ACTIVE is not None and _chaos.fire(SERVE_SERVER_KILL):
                raise _chaos.InjectedCrash(
                    "server killed between journal appends"
                )
            return base()

        return clock

    def execute(self, record: JobRecord, n_workers: int = 2,
                cluster: Optional[ClusterConfig] = None,
                cancel: Optional[CancelToken] = None) -> Dict[str, object]:
        """Run (or resume) the job's cluster analysis; cache the result.

        ``cancel`` threads the service's drain token (and the spec's
        own ``deadline_s``) down to every worker.  A deadline that
        trips after at least one inference finished yields a *degraded*
        result: journalled, servable, marked on the record — but never
        cached, so an identical resubmission recomputes in full.
        """
        with open(self.alignment_path(record.digest)) as fh:
            text = fh.read()
        patterns = load_alignment_text(text, aa=record.spec.aa).compress()
        journal = self.journal_path(record.job_id)
        self.runs_executed += 1
        # Resume only a journal that got as far as its run_started
        # header.  A server killed between opening the journal and the
        # first append leaves an empty (or torn-header) file; run_job
        # opens with "w" and starts that job from scratch.
        resumable = (os.path.exists(journal)
                     and replay(journal).spec is not None)
        if resumable:
            analysis = resume_job(journal, patterns, n_workers=n_workers,
                                  cluster=cluster, clock=self._run_clock(),
                                  cancel=cancel)
        else:
            analysis = run_job(record.spec, patterns, n_workers=n_workers,
                               journal_path=journal, cluster=cluster,
                               clock=self._run_clock(), cancel=cancel)
        payload = result_payload(record.digest, record.spec, journal)
        perf = payload.get("perf") or {}
        self.engine_counters["fault_recoveries"] += int(
            perf.get("fault_recoveries", 0))
        self.engine_counters["degraded_evaluations"] += int(
            perf.get("degraded", 0))
        if analysis.degraded:
            self.degraded_served += 1
        else:
            # Only complete analyses enter the content-addressed cache:
            # a digest must always name the full requested result.
            self.cache.put(record.digest, payload)
        record.state = JOB_DONE
        record.degraded = analysis.degraded
        record.error = None
        self.save(record)
        return payload

    def result(self, record: JobRecord) -> Optional[Dict[str, object]]:
        payload = self.cache.get(record.digest)
        if payload is not None:
            return payload
        if record.degraded:
            # Degraded results are deliberately uncached; rebuild the
            # servable payload from the job's own journal instead.
            journal = self.journal_path(record.job_id)
            if os.path.exists(journal):
                return result_payload(record.digest, record.spec, journal)
        return None

    def progress(self, record: JobRecord) -> Optional[Dict[str, object]]:
        """Live journal-derived progress for a running/interrupted job."""
        journal = self.journal_path(record.job_id)
        if not os.path.exists(journal):
            return None
        state = replay(journal)
        done_bootstraps = len(state.done_bootstraps)
        return {
            "inferences_done": len(state.done_inferences),
            "bootstraps_done": done_bootstraps,
            "retries": len(state.retries),
            "worker_deaths": len(state.worker_deaths),
            "resumes": state.resumes,
            "bootstop_stop_at": (int(state.bootstop["stop_at"])
                                 if state.bootstop else None),
            "finished": state.finished,
        }

    def counters(self) -> Dict[str, int]:
        return {"runs_executed": self.runs_executed,
                "degraded_served": self.degraded_served,
                **self.cache.counters()}


class JobService:
    """Transport-free service core: fair scheduling over the store."""

    def __init__(
        self,
        root: str,
        n_workers: int = 2,
        max_inflight_per_client: int = 1,
        cluster: Optional[ClusterConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        max_queued_total: Optional[int] = None,
        max_queued_per_client: Optional[int] = None,
        max_job_memory_mb: Optional[float] = None,
    ):
        self.store = JobStore(root, clock=clock)
        self.scheduler = FairScheduler(
            max_inflight_per_client,
            max_queued_total=max_queued_total,
            max_queued_per_client=max_queued_per_client,
        )
        self.n_workers = n_workers
        self.cluster = cluster
        self.max_job_memory_mb = max_job_memory_mb
        self.draining = False
        # Live cancel tokens of in-flight executes, keyed by job id.
        # begin_drain() trips them all; each execute registers its own
        # on entry and removes it on exit (all under the GIL — the
        # executor threads and the event loop share one interpreter).
        self._active_tokens: Dict[str, CancelToken] = {}

    # -- drain --------------------------------------------------------------

    def begin_drain(self) -> int:
        """Stop admitting work and cancel every in-flight run.

        Idempotent.  Returns the number of tokens tripped.  Cancelled
        runs unwind with ``TaskCancelled(reason="drain")`` at the next
        safe point, leaving their journals *without* a terminal record
        — exactly the state :meth:`recover` resumes bit-identically.
        """
        self.draining = True
        tripped = 0
        for token in list(self._active_tokens.values()):
            token.cancel(REASON_DRAIN)
            tripped += 1
        return tripped

    # -- lifecycle ----------------------------------------------------------

    def recover(self) -> List[JobRecord]:
        """Re-enqueue journalled work after a restart.

        ``running`` records are jobs the previous server died under;
        their journals resume bit-identically.  Returns the re-enqueued
        records in submission order (which is also re-dispatch order,
        so a restarted server reproduces the original schedule).
        """
        recovered = []
        for record in self.store.load_all():
            if record.state in (JOB_QUEUED, JOB_RUNNING):
                if record.state == JOB_RUNNING:
                    record.state = JOB_QUEUED
                    self.store.save(record)
                self.scheduler.submit(record.job_id, record.client,
                                      record.priority)
                recovered.append(record)
        return recovered

    # -- submission ---------------------------------------------------------

    def submit(self, alignment_text: str, spec: JobSpec,
               client: str = "anonymous", priority: int = 10
               ) -> Tuple[JobRecord, bool]:
        """Admit, persist and enqueue one submission.

        Admission control runs *before* any durable side effect: a
        rejected submission — drain
        (:class:`~repro.serve.resilience.DrainingError`), malformed
        alignment (:class:`~repro.phylo.alignment.AlignmentError`),
        memory preflight
        (:class:`~repro.serve.resilience.ResourceLimitError`), or
        backpressure (:class:`~repro.serve.fairness.QueueFullError`) —
        leaves no record, alignment file or journal behind, so clients
        can blindly retry after ``Retry-After``.  Cache hits bypass the
        watermarks and the preflight entirely — they never consume
        queue capacity or worker memory.
        """
        if self.draining:
            raise DrainingError()
        patterns = load_alignment_text(alignment_text, aa=spec.aa).compress()
        digest = job_digest(patterns, spec)
        if not self.store.cache.contains(digest):
            preflight(patterns, spec, self.max_job_memory_mb,
                      n_workers=self.n_workers)
            self.scheduler.check_capacity(client)
        record, hit = self.store.submit(alignment_text, spec, client,
                                        priority, digest=digest)
        if not hit:
            self.scheduler.submit(record.job_id, record.client,
                                  record.priority)
        return record, hit

    # -- execution ----------------------------------------------------------

    def next_job(self) -> Optional[JobRecord]:
        """Claim the next job per the fairness policy (marks it running)."""
        entry = self.scheduler.next()
        if entry is None:
            return None
        record = self.store.get(entry.job_id)
        if record is None:  # record vanished; release the slot
            self.scheduler.finished(entry.client)
            return None
        record.state = JOB_RUNNING
        self.store.save(record)
        return record

    def execute(self, record: JobRecord) -> JobRecord:
        """Run one claimed job to completion (or failure).

        An :class:`~repro.chaos.injector.InjectedCrash` models the
        server process dying and is re-raised untouched — the record
        stays ``running`` on disk, which is exactly what
        :meth:`recover` expects to find after a real kill.  A drain
        cancellation propagates the same way: the record stays
        ``running``, the journal stays open-ended, and the restarted
        service resumes it bit-identically.  A deadline that salvaged
        nothing fails the job with a typed error.
        """
        token = CancelToken()
        # Register before checking the flag: begin_drain() sets
        # ``draining`` and then cancels every registered token, so
        # whichever side loses the race still sees the other's write —
        # checking first would let a drain landing in between miss this
        # job entirely.
        self._active_tokens[record.job_id] = token
        if self.draining:  # drain began between claim and execute
            token.cancel(REASON_DRAIN)
        try:
            self.store.execute(record, n_workers=self.n_workers,
                               cluster=self.cluster, cancel=token)
        except _chaos.InjectedCrash:
            raise
        except TaskCancelled as exc:
            if exc.reason == REASON_DRAIN:
                raise
            record.state = JOB_FAILED
            record.error = f"TaskCancelled: {exc}"
            self.store.save(record)
        except Exception as exc:  # noqa: BLE001 — job faults stay local
            record.state = JOB_FAILED
            record.error = f"{type(exc).__name__}: {exc}"
            self.store.save(record)
        finally:
            self._active_tokens.pop(record.job_id, None)
            # The crash path never reaches this in a real death; for the
            # in-process simulation the restarted service rebuilds its
            # scheduler from disk anyway.
            if record.state != JOB_RUNNING:
                self.scheduler.finished(record.client)
        return record

    def run_next(self) -> Optional[JobRecord]:
        """Claim and execute one job synchronously; None when idle."""
        record = self.next_job()
        if record is None:
            return None
        return self.execute(record)

    # -- views --------------------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict[str, object]]:
        record = self.store.get(job_id)
        if record is None:
            return None
        payload: Dict[str, object] = {
            "job_id": record.job_id,
            "client": record.client,
            "priority": record.priority,
            "digest": record.digest,
            "state": record.state,
            "cached": record.cached,
            "degraded": record.degraded,
            "error": record.error,
            "created": record.created,
            "updated": record.updated,
        }
        progress = self.store.progress(record)
        if progress is not None:
            payload["progress"] = progress
        return payload

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        record = self.store.get(job_id)
        if record is None or record.state != JOB_DONE:
            return None
        return self.store.result(record)

    def stats(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler.snapshot(),
            "draining": self.draining,
            **self.store.counters(),
        }

    def health(self) -> Dict[str, object]:
        """The /healthz body: liveness plus degradation pressure."""
        return {
            "ok": True,
            "draining": self.draining,
            "queue_depth": self.scheduler.n_queued,
            "inflight_jobs": len(self._active_tokens),
            "degraded_served": self.store.degraded_served,
            "engine": dict(self.store.engine_counters),
        }
