"""Durable job records and the synchronous service core.

The store is the crash-safe half of the service: every job record is a
single JSON file written atomically, alignments are stored
content-addressed (one copy no matter how many clients submit the same
data), and each job's cluster journal lives under a stable path derived
from the job id.  A server killed at *any* point — the
``serve.server_kill`` chaos site fires between two journal appends of a
running job — restarts by re-enqueueing its ``queued``/``running``
records and resuming their journals, and the cluster's bit-identical
resume contract makes the final results indistinguishable from an
uninterrupted server.

:class:`JobService` is the transport-free orchestration core: submit →
fair-schedule → execute → cache.  The asyncio HTTP front-end
(:mod:`repro.serve.app`) drives it through an executor; tests and the
chaos campaign drive it directly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..chaos import injector as _chaos
from ..chaos.plan import SERVE_SERVER_KILL
from ..cluster.checkpoint import atomic_write, replay
from ..cluster.jobs import JobSpec
from ..cluster.queue import ClusterConfig
from ..cluster.runner import job_status, resume_job, run_job
from ..phylo.alignment import Alignment
from .cache import ResultCache, job_digest
from .fairness import FairScheduler

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JobRecord",
    "JobStore",
    "JobService",
    "digest_of",
    "load_alignment_text",
    "result_payload",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


def load_alignment_text(text: str, aa: bool = False):
    """Parse submitted FASTA/PHYLIP text into an alignment object."""
    if aa:
        from ..phylo.protein import ProteinAlignment

        cls = ProteinAlignment
    else:
        cls = Alignment
    if text.lstrip().startswith(">"):
        return cls.from_fasta(text)
    return cls.from_phylip(text)


def digest_of(alignment_text: str, spec: JobSpec) -> str:
    """The content-addressed digest of a submission (parses once)."""
    patterns = load_alignment_text(alignment_text, aa=spec.aa).compress()
    return job_digest(patterns, spec)


@dataclass
class JobRecord:
    """One submission's durable state (a single atomic JSON file)."""

    job_id: str
    client: str
    priority: int
    digest: str
    spec: JobSpec
    state: str = JOB_QUEUED
    cached: bool = False
    submitted_seq: int = 0
    error: Optional[str] = None
    created: float = 0.0
    updated: float = 0.0

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["spec"] = self.spec.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JobRecord":
        data = dict(payload)
        data["spec"] = JobSpec.from_json(data["spec"])
        return cls(**data)


def result_payload(digest: str, spec: JobSpec, journal_path: str
                   ) -> Dict[str, object]:
    """Assemble the servable result from a finished job's journal.

    Everything here is a pure function of the journalled payloads, so
    a result computed after a crash-resume cycle is byte-identical to
    one from an uninterrupted run — the chaos campaign compares the
    canonical JSON of this payload across runs.
    """
    status = job_status(journal_path)
    supports = sorted(
        ([sorted(split), value] for split, value in status["supports"].items()),
        key=lambda item: item[0],
    )
    consensus_supports = sorted(
        ([sorted(split), value]
         for split, value in (status["consensus_supports"] or {}).items()),
        key=lambda item: item[0],
    )
    best = status["best"] or {}
    return {
        "digest": digest,
        "best_newick": best.get("newick"),
        "best_log_likelihood": best.get("log_likelihood"),
        "n_inferences": status["n_inferences_done"],
        "n_bootstraps_requested": spec.n_bootstraps,
        "n_bootstraps_used": status["n_bootstraps_done"],
        "bootstop": status["bootstop"],
        "supports": supports,
        "consensus_newick": status["consensus_newick"],
        "consensus_supports": consensus_supports,
        "perf": status["perf"],
    }


class JobStore:
    """Filesystem layout + atomic persistence of the service state.

    ::

        root/
          cache/<digest>.json        # content-addressed results
          alignments/<digest>.txt    # content-addressed submissions
          jobs/<job_id>.json         # one record per submission
          journals/<job_id>.jsonl    # the job's cluster run journal
    """

    def __init__(self, root: str, clock: Optional[Callable[[], float]] = None):
        self.root = os.fspath(root)
        self._clock = clock if clock is not None else time.time
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.journals_dir = os.path.join(self.root, "journals")
        self.alignments_dir = os.path.join(self.root, "alignments")
        for path in (self.jobs_dir, self.journals_dir, self.alignments_dir):
            os.makedirs(path, exist_ok=True)
        self.cache = ResultCache(os.path.join(self.root, "cache"))
        self.runs_executed = 0
        self._next_seq = 1 + max(
            (r.submitted_seq for r in self.load_all()), default=0
        )

    # -- records ------------------------------------------------------------

    def record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.journals_dir, f"{job_id}.jsonl")

    def alignment_path(self, digest: str) -> str:
        return os.path.join(self.alignments_dir, f"{digest}.txt")

    def save(self, record: JobRecord) -> None:
        record.updated = self._clock()
        atomic_write(self.record_path(record.job_id),
                     json.dumps(record.to_json(), sort_keys=True) + "\n")

    def get(self, job_id: str) -> Optional[JobRecord]:
        try:
            with open(self.record_path(job_id)) as fh:
                return JobRecord.from_json(json.load(fh))
        except FileNotFoundError:
            return None

    def load_all(self) -> List[JobRecord]:
        records = []
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except FileNotFoundError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            with open(os.path.join(self.jobs_dir, name)) as fh:
                records.append(JobRecord.from_json(json.load(fh)))
        records.sort(key=lambda r: r.submitted_seq)
        return records

    # -- submission ---------------------------------------------------------

    def submit(self, alignment_text: str, spec: JobSpec, client: str,
               priority: int = 10, digest: Optional[str] = None
               ) -> Tuple[JobRecord, bool]:
        """Create a job record; returns ``(record, cache_hit)``.

        On a cache hit the record is born ``done`` with ``cached=True``
        and no cluster work is ever scheduled for it — the digest
        already addresses a finished result.  Callers that computed the
        digest already (e.g. for an admission-control check) pass it in
        to skip the second alignment parse.
        """
        if digest is None:
            digest = digest_of(alignment_text, spec)
        alignment_file = self.alignment_path(digest)
        if not os.path.exists(alignment_file):
            atomic_write(alignment_file, alignment_text)
        seq = self._next_seq
        self._next_seq += 1
        hit = self.cache.get(digest) is not None
        record = JobRecord(
            job_id=f"j{seq:06d}-{digest[:10]}",
            client=client,
            priority=priority,
            digest=digest,
            spec=spec,
            state=JOB_DONE if hit else JOB_QUEUED,
            cached=hit,
            submitted_seq=seq,
            created=self._clock(),
        )
        self.save(record)
        return record, hit

    # -- execution ----------------------------------------------------------

    def _run_clock(self) -> Callable[[], float]:
        """The journal clock, instrumented as the server-kill site.

        The site is probed once per journal append, i.e. between two
        durable records of the running job — exactly where a real
        process death lands.  The raised
        :class:`~repro.chaos.injector.InjectedCrash` propagates out of
        the run machinery (which shuts its workers down on the way) and
        models the serving process dying mid-job.
        """
        base = self._clock

        def clock() -> float:
            if _chaos._ACTIVE is not None and _chaos.fire(SERVE_SERVER_KILL):
                raise _chaos.InjectedCrash(
                    "server killed between journal appends"
                )
            return base()

        return clock

    def execute(self, record: JobRecord, n_workers: int = 2,
                cluster: Optional[ClusterConfig] = None) -> Dict[str, object]:
        """Run (or resume) the job's cluster analysis; cache the result."""
        with open(self.alignment_path(record.digest)) as fh:
            text = fh.read()
        patterns = load_alignment_text(text, aa=record.spec.aa).compress()
        journal = self.journal_path(record.job_id)
        self.runs_executed += 1
        # Resume only a journal that got as far as its run_started
        # header.  A server killed between opening the journal and the
        # first append leaves an empty (or torn-header) file; run_job
        # opens with "w" and starts that job from scratch.
        resumable = (os.path.exists(journal)
                     and replay(journal).spec is not None)
        if resumable:
            resume_job(journal, patterns, n_workers=n_workers,
                       cluster=cluster, clock=self._run_clock())
        else:
            run_job(record.spec, patterns, n_workers=n_workers,
                    journal_path=journal, cluster=cluster,
                    clock=self._run_clock())
        payload = result_payload(record.digest, record.spec, journal)
        self.cache.put(record.digest, payload)
        record.state = JOB_DONE
        record.error = None
        self.save(record)
        return payload

    def result(self, record: JobRecord) -> Optional[Dict[str, object]]:
        return self.cache.get(record.digest)

    def progress(self, record: JobRecord) -> Optional[Dict[str, object]]:
        """Live journal-derived progress for a running/interrupted job."""
        journal = self.journal_path(record.job_id)
        if not os.path.exists(journal):
            return None
        state = replay(journal)
        done_bootstraps = len(state.done_bootstraps)
        return {
            "inferences_done": len(state.done_inferences),
            "bootstraps_done": done_bootstraps,
            "retries": len(state.retries),
            "worker_deaths": len(state.worker_deaths),
            "resumes": state.resumes,
            "bootstop_stop_at": (int(state.bootstop["stop_at"])
                                 if state.bootstop else None),
            "finished": state.finished,
        }

    def counters(self) -> Dict[str, int]:
        return {"runs_executed": self.runs_executed,
                **self.cache.counters()}


class JobService:
    """Transport-free service core: fair scheduling over the store."""

    def __init__(
        self,
        root: str,
        n_workers: int = 2,
        max_inflight_per_client: int = 1,
        cluster: Optional[ClusterConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        max_queued_total: Optional[int] = None,
        max_queued_per_client: Optional[int] = None,
    ):
        self.store = JobStore(root, clock=clock)
        self.scheduler = FairScheduler(
            max_inflight_per_client,
            max_queued_total=max_queued_total,
            max_queued_per_client=max_queued_per_client,
        )
        self.n_workers = n_workers
        self.cluster = cluster

    # -- lifecycle ----------------------------------------------------------

    def recover(self) -> List[JobRecord]:
        """Re-enqueue journalled work after a restart.

        ``running`` records are jobs the previous server died under;
        their journals resume bit-identically.  Returns the re-enqueued
        records in submission order (which is also re-dispatch order,
        so a restarted server reproduces the original schedule).
        """
        recovered = []
        for record in self.store.load_all():
            if record.state in (JOB_QUEUED, JOB_RUNNING):
                if record.state == JOB_RUNNING:
                    record.state = JOB_QUEUED
                    self.store.save(record)
                self.scheduler.submit(record.job_id, record.client,
                                      record.priority)
                recovered.append(record)
        return recovered

    # -- submission ---------------------------------------------------------

    def submit(self, alignment_text: str, spec: JobSpec,
               client: str = "anonymous", priority: int = 10
               ) -> Tuple[JobRecord, bool]:
        """Admit, persist and enqueue one submission.

        Backpressure runs *before* any durable side effect: a rejected
        submission (:class:`~repro.serve.fairness.QueueFullError`)
        leaves no record, alignment file or journal behind, so clients
        can blindly retry after ``Retry-After``.  Cache hits bypass the
        watermarks entirely — they never consume queue capacity.
        """
        digest = digest_of(alignment_text, spec)
        if not self.store.cache.contains(digest):
            self.scheduler.check_capacity(client)
        record, hit = self.store.submit(alignment_text, spec, client,
                                        priority, digest=digest)
        if not hit:
            self.scheduler.submit(record.job_id, record.client,
                                  record.priority)
        return record, hit

    # -- execution ----------------------------------------------------------

    def next_job(self) -> Optional[JobRecord]:
        """Claim the next job per the fairness policy (marks it running)."""
        entry = self.scheduler.next()
        if entry is None:
            return None
        record = self.store.get(entry.job_id)
        if record is None:  # record vanished; release the slot
            self.scheduler.finished(entry.client)
            return None
        record.state = JOB_RUNNING
        self.store.save(record)
        return record

    def execute(self, record: JobRecord) -> JobRecord:
        """Run one claimed job to completion (or failure).

        An :class:`~repro.chaos.injector.InjectedCrash` models the
        server process dying and is re-raised untouched — the record
        stays ``running`` on disk, which is exactly what
        :meth:`recover` expects to find after a real kill.
        """
        try:
            self.store.execute(record, n_workers=self.n_workers,
                               cluster=self.cluster)
        except _chaos.InjectedCrash:
            raise
        except Exception as exc:  # noqa: BLE001 — job faults stay local
            record.state = JOB_FAILED
            record.error = f"{type(exc).__name__}: {exc}"
            self.store.save(record)
        finally:
            # The crash path never reaches this in a real death; for the
            # in-process simulation the restarted service rebuilds its
            # scheduler from disk anyway.
            if record.state != JOB_RUNNING:
                self.scheduler.finished(record.client)
        return record

    def run_next(self) -> Optional[JobRecord]:
        """Claim and execute one job synchronously; None when idle."""
        record = self.next_job()
        if record is None:
            return None
        return self.execute(record)

    # -- views --------------------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict[str, object]]:
        record = self.store.get(job_id)
        if record is None:
            return None
        payload: Dict[str, object] = {
            "job_id": record.job_id,
            "client": record.client,
            "priority": record.priority,
            "digest": record.digest,
            "state": record.state,
            "cached": record.cached,
            "error": record.error,
            "created": record.created,
            "updated": record.updated,
        }
        progress = self.store.progress(record)
        if progress is not None:
            payload["progress"] = progress
        return payload

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        record = self.store.get(job_id)
        if record is None or record.state != JOB_DONE:
            return None
        return self.store.result(record)

    def stats(self) -> Dict[str, object]:
        return {
            "scheduler": self.scheduler.snapshot(),
            **self.store.counters(),
        }
