"""Asyncio HTTP/JSON front-end over the synchronous service core.

Stdlib only: ``asyncio.start_server`` plus hand-rolled HTTP/1.1 framing
(the request surface is small and fully under our control, so a
dependency-free parser is ~60 lines).  Blocking cluster runs execute in
a thread pool — the event loop only ever parses requests, tails
journals, and frames responses, so status and event-stream requests
stay responsive while replicates grind in worker processes.

Routes::

    GET  /healthz            liveness probe + degradation counters
    GET  /readyz             readiness probe (503 once draining)
    POST /jobs               submit (alignment + model + seed) -> job id
    GET  /jobs               list job summaries
    GET  /jobs/{id}          durable record + live journal progress
    GET  /jobs/{id}/events   SSE stream of the job's run journal
    GET  /jobs/{id}/result   final result (best tree, supports, consensus)
    GET  /stats              scheduler + cache counters
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..phylo.alignment import AlignmentError
from .api import ApiError, parse_submission
from .fairness import QueueFullError
from .jobstore import JOB_DONE, JOB_FAILED, JobService
from .resilience import DrainingError, ResourceLimitError, TaskCancelled
from .sse import JournalTail, format_sse

__all__ = ["ServeApp", "serve_forever"]

logger = logging.getLogger(__name__)

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Hard ceilings on request framing (a service must bound its inputs).
_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


class _HttpRequest:
    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


async def _read_request(
    reader: asyncio.StreamReader,
    header_timeout: Optional[float] = None,
    body_timeout: Optional[float] = None,
) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request; None on clean EOF before any bytes.

    Both reads are bounded in *time* as well as size: a client that
    trickles bytes slower than the timeouts (the classic slowloris
    posture, and the ``serve.slow_client`` chaos site) gets a typed 408
    instead of pinning a connection open indefinitely.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout
        )
    except asyncio.TimeoutError:
        raise ApiError(408, "header_timeout",
                       "request head not received in time")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ApiError(400, "bad_request", "truncated request head")
    except asyncio.LimitOverrunError:
        raise ApiError(413, "headers_too_large", "request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise ApiError(413, "headers_too_large", "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ApiError(400, "bad_request", f"malformed request line: {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ApiError(400, "bad_request", "bad Content-Length")
        if length > _MAX_BODY_BYTES:
            raise ApiError(413, "body_too_large",
                           f"body exceeds {_MAX_BODY_BYTES} bytes")
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=body_timeout
            )
        except asyncio.TimeoutError:
            raise ApiError(408, "body_timeout",
                           "request body not received in time")
        except asyncio.IncompleteReadError:
            raise ApiError(400, "bad_request", "truncated request body")
    return _HttpRequest(method, path, headers, body)


def _response(status: int, payload: Dict[str, object],
              headers: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + body


def _error_headers(exc: ApiError) -> Optional[Dict[str, str]]:
    """Headers implied by an :class:`ApiError` (Retry-After on 429/503)."""
    if exc.retry_after is None:
        return None
    return {"Retry-After": f"{max(1, int(round(exc.retry_after)))}"}


class ServeApp:
    """The HTTP server: routing, SSE streaming, and job dispatch."""

    def __init__(
        self,
        service: JobService,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_concurrent_jobs: int = 1,
        poll_interval: float = 0.1,
        drain_grace_s: float = 10.0,
        header_timeout_s: float = 5.0,
        body_timeout_s: float = 15.0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.drain_grace_s = drain_grace_s
        self.header_timeout_s = header_timeout_s
        self.body_timeout_s = body_timeout_s
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent_jobs,
            thread_name_prefix="repro-serve-job",
        )
        self._max_concurrent = max_concurrent_jobs
        self._inflight: set = set()
        self._sse_active = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()
        self._wakeup = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        recovered = self.service.recover()
        if recovered:
            logger.info("recovered %d unfinished job(s) from %s",
                        len(recovered), self.service.store.root)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_HEADER_BYTES,
        )
        if self.port == 0:  # tests bind an ephemeral port
            self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        logger.info("repro-serve listening on %s:%d", self.host, self.port)

    @property
    def draining(self) -> bool:
        return self.service.draining

    def begin_drain(self) -> None:
        """Flip /readyz, reject new submits, cancel in-flight runs.

        Idempotent; the actual unwinding is cooperative — each running
        job trips at its next safe point, journals its progress, and
        leaves a resumable journal behind.  :meth:`stop` bounds how
        long we wait for that.
        """
        if not self.service.draining:
            logger.info("drain requested: rejecting new submissions")
        self.service.begin_drain()
        self._wakeup.set()

    async def stop(self) -> None:
        """Graceful, *bounded* shutdown.

        Drain first, give in-flight jobs ``drain_grace_s`` seconds to
        reach a checkpoint, then abandon the executor without waiting —
        a stop must complete in bounded time even if a worker is
        wedged.  Abandoned jobs stay ``running`` on disk; the next
        start resumes them bit-identically.
        """
        self.begin_drain()
        # Keep the listener open while in-flight jobs unwind: load
        # balancers see /readyz 503 and clients get typed "draining"
        # rejections for the whole grace window instead of connection
        # refusals the moment the signal lands.
        if self._inflight:
            _done, pending = await asyncio.wait(
                set(self._inflight), timeout=self.drain_grace_s
            )
            if pending:
                logger.warning(
                    "%d job(s) still running after %.1fs drain grace; "
                    "abandoning (journals resume on restart)",
                    len(pending), self.drain_grace_s,
                )
        self._stopping.set()
        self._wakeup.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            await self._dispatcher
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Pull jobs off the fair scheduler into the thread pool."""
        loop = asyncio.get_event_loop()
        while not self._stopping.is_set():
            started = False
            while (not self.draining
                   and len(self._inflight) < self._max_concurrent):
                record = self.service.next_job()
                if record is None:
                    break
                future = loop.run_in_executor(
                    self._executor, self.service.execute, record
                )
                self._inflight.add(future)
                future.add_done_callback(self._job_done)
                started = True
            if not started:
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(),
                                           timeout=self.poll_interval)
                except asyncio.TimeoutError:
                    pass

    def _job_done(self, future) -> None:
        self._inflight.discard(future)
        exc = future.exception() if not future.cancelled() else None
        if isinstance(exc, TaskCancelled):
            # The expected unwinding of a drained job: its record stays
            # running on disk and resumes on the next start.
            logger.info("job drained to checkpoint: %s", exc)
        elif exc is not None:
            # service.execute only lets a simulated server-kill escape;
            # anything else here is a bug worth a loud log line.
            logger.error("job execution raised: %s", exc)
        self._wakeup.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(
                    reader,
                    header_timeout=self.header_timeout_s,
                    body_timeout=self.body_timeout_s,
                )
            except ApiError as exc:
                writer.write(_response(exc.status, exc.payload()))
                await writer.drain()
                return
            if request is None:
                return
            await self._route(request, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception:  # noqa: BLE001 — a connection must not kill the app
            logger.exception("unhandled error serving a request")
            try:
                writer.write(_response(
                    500, {"error": "internal", "message": "internal error"}
                ))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                # shutdown(SHUT_WR) the socket, don't just close the fd:
                # forked cluster workers inherit accepted connections, so
                # a plain close sends no FIN until the last worker exits
                # and a client reading to EOF hangs for the whole run.
                if writer.can_write_eof():
                    writer.write_eof()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: _HttpRequest,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        method, path = request.method, request.path.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                payload = self.service.health()
                payload["sse_streams"] = self._sse_active
                status = 200
            elif path == "/readyz" and method == "GET":
                # Readiness flips the moment a drain begins so a load
                # balancer stops routing here before the listener goes
                # away; liveness (/healthz) stays 200 throughout.
                if self.draining:
                    status, payload = 503, {"ready": False,
                                            "draining": True}
                else:
                    status, payload = 200, {"ready": True,
                                            "draining": False}
            elif path == "/jobs" and method == "POST":
                status, payload = self._submit(request.body)
                self._wakeup.set()
            elif path == "/jobs" and method == "GET":
                status, payload = 200, self._list_jobs()
            elif path == "/stats" and method == "GET":
                status, payload = 200, self.service.stats()
            elif path.startswith("/jobs/"):
                parts = path[len("/jobs/"):].split("/")
                if method != "GET":
                    raise ApiError(405, "method_not_allowed",
                                   f"{method} not allowed on {path}")
                if len(parts) == 1:
                    status, payload = self._status(parts[0])
                elif len(parts) == 2 and parts[1] == "events":
                    await self._stream_events(parts[0], reader, writer)
                    return
                elif len(parts) == 2 and parts[1] == "result":
                    status, payload = self._result(parts[0])
                else:
                    raise ApiError(404, "not_found", f"no route: {path}")
            else:
                raise ApiError(404, "not_found", f"no route: {method} {path}")
        except ApiError as exc:
            writer.write(_response(exc.status, exc.payload(),
                                   headers=_error_headers(exc)))
            await writer.drain()
            return
        writer.write(_response(status, payload))
        await writer.drain()

    # -- route bodies -------------------------------------------------------

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        alignment, spec, client, priority = parse_submission(body)
        try:
            record, hit = self.service.submit(alignment, spec,
                                              client=client,
                                              priority=priority)
        except DrainingError as exc:
            raise ApiError(503, "draining", str(exc),
                           retry_after=exc.retry_after_s) from exc
        except QueueFullError as exc:
            raise ApiError(429, "queue_full", str(exc),
                           retry_after=exc.retry_after_s) from exc
        except ResourceLimitError as exc:
            raise ApiError(
                413, "job_too_large", str(exc),
                extra={"estimated_mb": round(exc.estimated_mb, 1),
                       "limit_mb": exc.limit_mb},
            ) from exc
        except AlignmentError as exc:
            # The top-level code stays "alignment_invalid" (the
            # pre-existing contract); the parser's stable per-category
            # code rides along for programmatic clients.
            raise ApiError(400, "alignment_invalid",
                           f"could not parse alignment: {exc}",
                           extra={"alignment_code": exc.code}) from exc
        except ValueError as exc:
            raise ApiError(400, "alignment_invalid",
                           f"could not parse alignment: {exc}") from exc
        return (200 if hit else 201), {
            "job_id": record.job_id,
            "digest": record.digest,
            "state": record.state,
            "cached": hit,
        }

    def _list_jobs(self) -> Dict[str, object]:
        jobs = [
            {"job_id": r.job_id, "client": r.client, "state": r.state,
             "cached": r.cached, "priority": r.priority}
            for r in self.service.store.load_all()
        ]
        return {"jobs": jobs}

    def _status(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        status = self.service.status(job_id)
        if status is None:
            raise ApiError(404, "job_not_found", f"no such job: {job_id}")
        return 200, status

    def _result(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        record = self.service.store.get(job_id)
        if record is None:
            raise ApiError(404, "job_not_found", f"no such job: {job_id}")
        if record.state == JOB_FAILED:
            raise ApiError(409, "job_failed",
                           record.error or "job failed")
        if record.state != JOB_DONE:
            raise ApiError(409, "job_not_finished",
                           f"job is {record.state}; poll /jobs/{job_id}")
        result = self.service.store.result(record)
        if result is None:  # done record but evicted/corrupt cache entry
            raise ApiError(404, "result_missing",
                           "result is no longer cached; resubmit the job")
        return 200, result

    async def _stream_events(self, job_id: str,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """SSE-stream the job's journal until its terminal event.

        The loop watches for two early exits: a client disconnect
        (noticed within one poll interval — a dropped consumer must
        not pin a tailing task for the job's whole runtime) and a
        server drain (the stream ends with a ``server_draining`` event
        so clients know to reconnect elsewhere).
        """
        self._sse_active += 1
        try:
            await self._stream_events_inner(job_id, reader, writer)
        finally:
            self._sse_active -= 1

    @staticmethod
    def _client_gone(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> bool:
        return reader.at_eof() or writer.is_closing()

    async def _stream_events_inner(self, job_id: str,
                                   reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter) -> None:
        record = self.service.store.get(job_id)
        if record is None:
            writer.write(_response(
                404, {"error": "job_not_found",
                      "message": f"no such job: {job_id}"}
            ))
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        if record.cached:
            # A cache hit never journals: emit one synthetic event so
            # streaming clients get the same terminal signal either way.
            writer.write(format_sse(
                {"event": "cached_result", "digest": record.digest},
                0,
            ).encode())
            await writer.drain()
            return
        tail = JournalTail(self.service.store.journal_path(job_id))
        while True:
            if self._client_gone(reader, writer):
                return
            blocks = []
            terminal = False
            for journal_record in tail.poll():
                blocks.append(format_sse(journal_record, tail.next_id))
                tail.next_id += 1
                if JournalTail.is_terminal(journal_record):
                    terminal = True
            if blocks:
                writer.write("".join(blocks).encode())
                await writer.drain()
            if terminal:
                return
            record = self.service.store.get(job_id)
            if record is not None and record.state == JOB_FAILED:
                writer.write(format_sse(
                    {"event": "job_failed",
                     "error": record.error or "job failed"},
                    tail.next_id,
                ).encode())
                await writer.drain()
                return
            if self._stopping.is_set() or self.draining:
                writer.write(format_sse(
                    {"event": "server_draining"}, tail.next_id,
                ).encode())
                await writer.drain()
                return
            await asyncio.sleep(self.poll_interval)


async def serve_forever(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8642,
    n_workers: int = 2,
    max_inflight_per_client: int = 1,
    max_queued_total: Optional[int] = None,
    max_queued_per_client: Optional[int] = None,
    drain_grace_s: float = 10.0,
    max_job_memory_mb: Optional[float] = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the service until cancelled (the ``repro-phylo serve`` loop).

    SIGTERM/SIGINT trigger a graceful drain: readiness flips, new
    submissions get 503 + Retry-After, in-flight jobs get
    ``drain_grace_s`` seconds to reach a checkpoint, and the process
    exits cleanly — the next start resumes any interrupted journals
    bit-identically.
    """
    service = JobService(root, n_workers=n_workers,
                         max_inflight_per_client=max_inflight_per_client,
                         max_queued_total=max_queued_total,
                         max_queued_per_client=max_queued_per_client,
                         max_job_memory_mb=max_job_memory_mb)
    app = ServeApp(service, host=host, port=port,
                   drain_grace_s=drain_grace_s)
    await app.start()
    shutdown = asyncio.Event()
    loop = asyncio.get_event_loop()
    installed = []
    if install_signal_handlers:
        import signal as _signal

        def _on_signal(signum: int) -> None:
            logger.info("received signal %d: draining", signum)
            app.begin_drain()
            shutdown.set()

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _on_signal, signum)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
    try:
        await shutdown.wait()
    except asyncio.CancelledError:
        pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await app.stop()
