"""Request parsing / validation for the job API (transport-agnostic).

The asyncio front-end (:mod:`repro.serve.app`) does sockets and HTTP
framing; everything about *what a request means* lives here so tests
can exercise validation without a server.  All client errors surface as
:class:`ApiError` with an HTTP status and a stable machine-readable
``code`` — a service's error contract is part of its API.

A submission body looks like::

    {
      "alignment": ">t1\\nACGT...\\n>t2\\n...",   # FASTA or PHYLIP text
      "model": {
        "n_inferences": 1, "n_bootstraps": 20, "seed": 42,
        "aa": false, "model_name": null, "alpha": null,
        "categories": 4, "batch_size": 2, "deadline_s": null
      },
      "bootstop": true | {"check_every": 10, "threshold": 0.03, ...},
      "client": "alice",
      "priority": 10
    }
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..cluster.bootstop import BootstopConfig
from ..cluster.jobs import JobSpec

__all__ = ["ApiError", "parse_submission", "spec_from_request"]

#: ``model`` keys accepted from clients, with (type, validator) pairs.
#: Everything else in :class:`~repro.cluster.jobs.JobSpec` is an
#: execution detail the service chooses, not the client.
_MODEL_FIELDS = {
    "n_inferences": (int, lambda v: v >= 1),
    "n_bootstraps": (int, lambda v: v >= 0),
    "seed": (int, lambda v: True),
    "batch_size": (int, lambda v: v >= 1),
    "aa": (bool, lambda v: True),
    "model_name": (str, lambda v: bool(v)),
    "alpha": (float, lambda v: v > 0),
    "categories": (int, lambda v: 1 <= v <= 16),
    "deadline_s": (float, lambda v: v > 0),
}

#: ``model`` fields where an explicit JSON ``null`` means "default".
_NULLABLE_FIELDS = ("model_name", "alpha", "deadline_s")

_MAX_ALIGNMENT_BYTES = 4 * 1024 * 1024


class ApiError(Exception):
    """A client-visible request failure (maps to an HTTP error).

    ``retry_after`` (seconds) marks transient rejections — backpressure
    429s — and becomes both a ``retry_after_s`` payload field and a
    ``Retry-After`` response header.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None,
                 extra: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.extra = extra

    def payload(self) -> Dict[str, object]:
        body: Dict[str, object] = {"error": self.code,
                                   "message": self.message}
        if self.retry_after is not None:
            body["retry_after_s"] = self.retry_after
        if self.extra:
            body.update(self.extra)
        return body


def _bad(code: str, message: str) -> ApiError:
    return ApiError(400, code, message)


def spec_from_request(model: object, bootstop: object = None) -> JobSpec:
    """Build a :class:`JobSpec` from a submission's ``model`` block."""
    if not isinstance(model, dict):
        raise _bad("model_invalid", "'model' must be an object")
    unknown = sorted(set(model) - set(_MODEL_FIELDS))
    if unknown:
        raise _bad("model_unknown_field",
                   f"unknown model field(s): {', '.join(unknown)}")
    fields: Dict[str, object] = {}
    for name, value in model.items():
        expected, check = _MODEL_FIELDS[name]
        if value is None and name in _NULLABLE_FIELDS:
            continue
        if expected in (int, float) and isinstance(value, bool):
            raise _bad("model_invalid",
                       f"model field {name!r} must be {expected.__name__}")
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected) or not check(value):
            raise _bad("model_invalid",
                       f"model field {name!r} is invalid: {value!r}")
        fields[name] = value
    for required in ("n_inferences", "n_bootstraps", "seed"):
        if required not in fields:
            raise _bad("model_missing_field",
                       f"model field {required!r} is required")
    if bootstop not in (None, False):
        if bootstop is True:
            config = BootstopConfig()
        elif isinstance(bootstop, dict):
            try:
                config = BootstopConfig.from_json(bootstop)
            except (TypeError, ValueError) as exc:
                raise _bad("bootstop_invalid",
                           f"bad bootstop config: {exc}") from exc
        else:
            raise _bad("bootstop_invalid",
                       "'bootstop' must be true or a config object")
        fields["bootstop"] = config
    try:
        return JobSpec(**fields)
    except (TypeError, ValueError) as exc:  # defensive; fields are vetted
        raise _bad("model_invalid", f"bad model: {exc}") from exc


def parse_submission(body: bytes) -> Tuple[str, JobSpec, str, int]:
    """Validate a ``POST /jobs`` body.

    Returns ``(alignment_text, spec, client, priority)``.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _bad("body_not_json", f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise _bad("body_not_object", "request body must be a JSON object")
    alignment = payload.get("alignment")
    if not isinstance(alignment, str) or not alignment.strip():
        raise _bad("alignment_missing",
                   "'alignment' must be non-empty FASTA or PHYLIP text")
    if len(alignment) > _MAX_ALIGNMENT_BYTES:
        raise ApiError(413, "alignment_too_large",
                       f"alignment exceeds {_MAX_ALIGNMENT_BYTES} bytes")
    if "model" not in payload:
        raise _bad("model_missing", "'model' is required")
    spec = spec_from_request(payload["model"], payload.get("bootstop"))
    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client or len(client) > 128:
        raise _bad("client_invalid", "'client' must be a short string")
    priority = payload.get("priority", 10)
    if isinstance(priority, bool) or not isinstance(priority, int) \
            or not 0 <= priority <= 100:
        raise _bad("priority_invalid",
                   "'priority' must be an integer in [0, 100]")
    return alignment, spec, client, priority
