"""Admission-control preflight and drain/deadline plumbing for serve.

This module owns the service-level robustness vocabulary of ISSUE 10:

* a memory *preflight* that estimates a job's peak working set from the
  submission alone — (taxa, patterns, model) — so a submission that
  cannot possibly fit under the configured ceiling is rejected with a
  typed error at admission instead of OOM-killing a worker an hour in;
* :class:`ResourceLimitError` / :class:`DrainingError`, the transport
  -free rejection types the HTTP front-end maps onto 413 and 503;
* re-exports of the cluster cancellation API so serve code has one
  import site for drain/deadline machinery.

The estimate is deliberately *pessimistic and simple*: an admission
check must be a pure function of the submission (it runs before any
durable side effect) and err on the side of over-estimating — a false
reject is a clear, typed, immediately retryable-elsewhere answer, while
a false admit is a silent OOM kill later.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.cancel import (  # noqa: F401 — re-exported
    REASON_DEADLINE,
    REASON_DRAIN,
    CancelToken,
    TaskCancelled,
)
from ..cluster.jobs import JobSpec

__all__ = [
    "REASON_DEADLINE",
    "REASON_DRAIN",
    "CancelToken",
    "TaskCancelled",
    "DrainingError",
    "ResourceLimitError",
    "estimate_clv_mb",
    "estimate_job_memory_mb",
    "preflight",
]

#: Bytes per conditional-likelihood entry (float64).
_BYTES_PER_ENTRY = 8

#: Fudge factor over the raw CLV arithmetic: transition-matrix caches,
#: scaling vectors, the pattern matrix itself, numpy temporaries in the
#: kernels, and interpreter overhead.  Measured headroom on the bench
#: workloads is ~1.6-1.9x the raw CLV bytes; 2.0 keeps the preflight
#: pessimistic.
_OVERHEAD_FACTOR = 2.0

#: Fixed per-worker-process floor (interpreter + numpy + imports), MiB.
_BASE_PROCESS_MB = 48.0


class ResourceLimitError(RuntimeError):
    """A submission whose estimated working set exceeds the ceiling.

    Raised at admission, before any durable side effect — no record,
    alignment file, or journal exists for a rejected job.  The HTTP
    layer maps it to ``413 job_too_large``.
    """

    def __init__(self, estimated_mb: float, limit_mb: float,
                 detail: str = ""):
        self.estimated_mb = estimated_mb
        self.limit_mb = limit_mb
        message = (
            f"estimated job working set ~{estimated_mb:.0f} MiB exceeds "
            f"the service ceiling of {limit_mb:.0f} MiB"
        )
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class DrainingError(RuntimeError):
    """The service is draining and admits no new work.

    The HTTP layer maps it to ``503 draining`` with a ``Retry-After``
    header — the polite signal for a load balancer to move on.
    """

    def __init__(self, retry_after_s: float = 5.0):
        self.retry_after_s = retry_after_s
        super().__init__("service is draining; no new jobs are admitted")


def estimate_clv_mb(n_taxa: int, n_patterns: int, n_states: int = 4,
                    categories: int = 4) -> float:
    """Raw conditional-likelihood arena estimate for one engine, MiB.

    An unrooted binary tree over ``n_taxa`` leaves has ``n_taxa - 2``
    inner nodes, each holding one CLV of shape
    ``(n_patterns, categories, n_states)`` in float64; the engine keeps
    roughly one extra CLV's worth of scratch per traversal direction,
    so we budget ``n_taxa`` CLVs total.
    """
    n_clvs = max(1, int(n_taxa))
    entries = n_clvs * int(n_patterns) * int(categories) * int(n_states)
    return entries * _BYTES_PER_ENTRY / (1024.0 * 1024.0)


def estimate_job_memory_mb(
    n_taxa: int,
    n_patterns: int,
    spec: Optional[JobSpec] = None,
    n_states: Optional[int] = None,
    categories: Optional[int] = None,
    n_workers: int = 1,
) -> float:
    """Pessimistic peak working-set estimate for one submission, MiB.

    The dominant term is the CLV arena (see :func:`estimate_clv_mb`),
    scaled by the overhead factor and by how many engines run at once
    (one per worker process; each worker also pays the fixed process
    floor).  ``spec`` supplies ``aa``/``categories`` when the explicit
    arguments are omitted.
    """
    if n_states is None:
        n_states = 20 if (spec is not None and spec.aa) else 4
    if categories is None:
        categories = spec.categories if spec is not None else 4
    per_engine = estimate_clv_mb(n_taxa, n_patterns, n_states, categories)
    workers = max(1, int(n_workers))
    return workers * (_BASE_PROCESS_MB + _OVERHEAD_FACTOR * per_engine)


def preflight(patterns, spec: JobSpec, limit_mb: Optional[float],
              n_workers: int = 1) -> float:
    """Check a compressed submission against the memory ceiling.

    Returns the estimate (MiB); raises :class:`ResourceLimitError` when
    a ceiling is configured and the estimate exceeds it.  ``patterns``
    is any pattern alignment (``.taxa`` + ``.patterns`` array).
    """
    n_taxa, n_patterns = patterns.patterns.shape
    estimated = estimate_job_memory_mb(
        n_taxa, n_patterns, spec=spec, n_workers=n_workers
    )
    if limit_mb is not None and estimated > limit_mb:
        raise ResourceLimitError(
            estimated, limit_mb,
            detail=f"{n_taxa} taxa x {n_patterns} patterns, "
                   f"{n_workers} worker(s)",
        )
    return estimated
