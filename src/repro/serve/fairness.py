"""Multi-tenant fairness: per-client FIFO queues over the job pool.

The cluster's MGPS scheduler decides *how* one job's replicates spread
across workers; this layer decides *whose job runs next* when many
clients share the service.  The policy is deliberately simple and fully
deterministic:

* every client has its own FIFO queue — one chatty client can deepen
  only its own backlog, never delay another client's head-of-line job;
* at most ``max_inflight_per_client`` of a client's jobs run at once,
  so a burst from one tenant cannot monopolize the executor even when
  the service has idle slots;
* dispatch picks among the eligible queue heads by ``(priority,
  least-recently-served client, arrival order)`` — strict priorities
  first (lower number wins), round-robin across clients inside a
  priority band, FIFO within a client;
* queue depth is *bounded* (``max_queued_total`` /
  ``max_queued_per_client`` watermarks): a submission over a watermark
  raises :class:`QueueFullError` instead of enqueueing, which the HTTP
  layer surfaces as ``429 Too Many Requests`` with a ``Retry-After``
  hint — backpressure, not unbounded memory growth.

Every decision is a pure function of the submission history, so a
restarted server that re-enqueues its journalled jobs reproduces the
same dispatch order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["QueuedJob", "QueueFullError", "FairScheduler"]


class QueueFullError(Exception):
    """A submission hit a queue-depth watermark (HTTP 429 upstream).

    ``scope`` is ``"total"`` or ``"client"``; ``retry_after_s`` is the
    hint the transport layer should hand back as ``Retry-After``.
    """

    def __init__(self, scope: str, depth: int, limit: int,
                 retry_after_s: float):
        self.scope = scope
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(
            f"{scope} queue is full ({depth}/{limit}); "
            f"retry in {retry_after_s:g}s"
        )


@dataclass(frozen=True)
class QueuedJob:
    """One schedulable submission (jobs are identified by id only)."""

    job_id: str
    client: str
    priority: int = 10
    #: Monotonic submission sequence number (assigned by the scheduler).
    seq: int = field(default=0, compare=False)


class FairScheduler:
    """Deterministic per-client FIFO dispatch with inflight caps."""

    def __init__(self, max_inflight_per_client: int = 1,
                 max_queued_total: Optional[int] = None,
                 max_queued_per_client: Optional[int] = None,
                 retry_after_s: float = 5.0):
        if max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        if max_queued_total is not None and max_queued_total < 1:
            raise ValueError("max_queued_total must be >= 1")
        if max_queued_per_client is not None and max_queued_per_client < 1:
            raise ValueError("max_queued_per_client must be >= 1")
        self.max_inflight_per_client = max_inflight_per_client
        self.max_queued_total = max_queued_total
        self.max_queued_per_client = max_queued_per_client
        self.retry_after_s = retry_after_s
        self.rejected = 0
        self._queues: "OrderedDict[str, Deque[QueuedJob]]" = OrderedDict()
        self._inflight: Dict[str, int] = {}
        self._last_served: Dict[str, int] = {}
        self._seq = 0
        self._serve_clock = 0
        self.dispatched = 0

    # -- submission ---------------------------------------------------------

    def check_capacity(self, client: str) -> None:
        """Raise :class:`QueueFullError` if *client* may not enqueue now.

        Checked *before* any durable side effect of a submission, so a
        rejected request leaves no record behind.  Inflight jobs do not
        count against the watermarks — they already hold executor
        slots, and counting them would let a slow job lower the
        admission ceiling.
        """
        if self.max_queued_total is not None \
                and self.n_queued >= self.max_queued_total:
            self.rejected += 1
            raise QueueFullError("total", self.n_queued,
                                 self.max_queued_total, self.retry_after_s)
        if self.max_queued_per_client is not None:
            depth = len(self._queues.get(client, ()))
            if depth >= self.max_queued_per_client:
                self.rejected += 1
                raise QueueFullError("client", depth,
                                     self.max_queued_per_client,
                                     self.retry_after_s)

    def submit(self, job_id: str, client: str, priority: int = 10
               ) -> QueuedJob:
        """Append a job to its client's FIFO; returns the queued entry.

        Enforces the depth watermarks itself as a last line of defense;
        callers with durable side effects should call
        :meth:`check_capacity` first.
        """
        self.check_capacity(client)
        self._seq += 1
        entry = QueuedJob(job_id=job_id, client=client, priority=priority,
                          seq=self._seq)
        self._queues.setdefault(client, deque()).append(entry)
        return entry

    # -- dispatch -----------------------------------------------------------

    def _eligible_heads(self) -> List[QueuedJob]:
        heads = []
        for client, queue in self._queues.items():
            if not queue:
                continue
            if self._inflight.get(client, 0) >= self.max_inflight_per_client:
                continue
            heads.append(queue[0])
        return heads

    def next(self) -> Optional[QueuedJob]:
        """Pop and return the next job to run, or None when starved.

        The caller owns the executor slot accounting; this method only
        enforces the per-client cap and the selection order.
        """
        heads = self._eligible_heads()
        if not heads:
            return None
        choice = min(
            heads,
            key=lambda j: (j.priority,
                           self._last_served.get(j.client, 0),
                           j.seq),
        )
        self._queues[choice.client].popleft()
        self._inflight[choice.client] = (
            self._inflight.get(choice.client, 0) + 1
        )
        self._serve_clock += 1
        self._last_served[choice.client] = self._serve_clock
        self.dispatched += 1
        return choice

    def finished(self, client: str) -> None:
        """Release one of *client*'s inflight slots."""
        count = self._inflight.get(client, 0)
        if count <= 0:
            raise ValueError(f"client {client!r} has no inflight jobs")
        self._inflight[client] = count - 1

    # -- introspection ------------------------------------------------------

    @property
    def n_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def inflight(self, client: Optional[str] = None) -> int:
        if client is not None:
            return self._inflight.get(client, 0)
        return sum(self._inflight.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "queued": {c: [j.job_id for j in q]
                       for c, q in self._queues.items() if q},
            "inflight": {c: n for c, n in self._inflight.items() if n},
            "dispatched": self.dispatched,
            "max_inflight_per_client": self.max_inflight_per_client,
            "max_queued_total": self.max_queued_total,
            "max_queued_per_client": self.max_queued_per_client,
            "rejected": self.rejected,
        }
