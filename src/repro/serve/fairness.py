"""Multi-tenant fairness: per-client FIFO queues over the job pool.

The cluster's MGPS scheduler decides *how* one job's replicates spread
across workers; this layer decides *whose job runs next* when many
clients share the service.  The policy is deliberately simple and fully
deterministic:

* every client has its own FIFO queue — one chatty client can deepen
  only its own backlog, never delay another client's head-of-line job;
* at most ``max_inflight_per_client`` of a client's jobs run at once,
  so a burst from one tenant cannot monopolize the executor even when
  the service has idle slots;
* dispatch picks among the eligible queue heads by ``(priority,
  least-recently-served client, arrival order)`` — strict priorities
  first (lower number wins), round-robin across clients inside a
  priority band, FIFO within a client.

Every decision is a pure function of the submission history, so a
restarted server that re-enqueues its journalled jobs reproduces the
same dispatch order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["QueuedJob", "FairScheduler"]


@dataclass(frozen=True)
class QueuedJob:
    """One schedulable submission (jobs are identified by id only)."""

    job_id: str
    client: str
    priority: int = 10
    #: Monotonic submission sequence number (assigned by the scheduler).
    seq: int = field(default=0, compare=False)


class FairScheduler:
    """Deterministic per-client FIFO dispatch with inflight caps."""

    def __init__(self, max_inflight_per_client: int = 1):
        if max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        self.max_inflight_per_client = max_inflight_per_client
        self._queues: "OrderedDict[str, Deque[QueuedJob]]" = OrderedDict()
        self._inflight: Dict[str, int] = {}
        self._last_served: Dict[str, int] = {}
        self._seq = 0
        self._serve_clock = 0
        self.dispatched = 0

    # -- submission ---------------------------------------------------------

    def submit(self, job_id: str, client: str, priority: int = 10
               ) -> QueuedJob:
        """Append a job to its client's FIFO; returns the queued entry."""
        self._seq += 1
        entry = QueuedJob(job_id=job_id, client=client, priority=priority,
                          seq=self._seq)
        self._queues.setdefault(client, deque()).append(entry)
        return entry

    # -- dispatch -----------------------------------------------------------

    def _eligible_heads(self) -> List[QueuedJob]:
        heads = []
        for client, queue in self._queues.items():
            if not queue:
                continue
            if self._inflight.get(client, 0) >= self.max_inflight_per_client:
                continue
            heads.append(queue[0])
        return heads

    def next(self) -> Optional[QueuedJob]:
        """Pop and return the next job to run, or None when starved.

        The caller owns the executor slot accounting; this method only
        enforces the per-client cap and the selection order.
        """
        heads = self._eligible_heads()
        if not heads:
            return None
        choice = min(
            heads,
            key=lambda j: (j.priority,
                           self._last_served.get(j.client, 0),
                           j.seq),
        )
        self._queues[choice.client].popleft()
        self._inflight[choice.client] = (
            self._inflight.get(choice.client, 0) + 1
        )
        self._serve_clock += 1
        self._last_served[choice.client] = self._serve_clock
        self.dispatched += 1
        return choice

    def finished(self, client: str) -> None:
        """Release one of *client*'s inflight slots."""
        count = self._inflight.get(client, 0)
        if count <= 0:
            raise ValueError(f"client {client!r} has no inflight jobs")
        self._inflight[client] = count - 1

    # -- introspection ------------------------------------------------------

    @property
    def n_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def inflight(self, client: Optional[str] = None) -> int:
        if client is not None:
            return self._inflight.get(client, 0)
        return sum(self._inflight.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "queued": {c: [j.job_id for j in q]
                       for c, q in self._queues.items() if q},
            "inflight": {c: n for c, n in self._inflight.items() if n},
            "dispatched": self.dispatched,
            "max_inflight_per_client": self.max_inflight_per_client,
        }
