"""PPE <-> SPE signalling: mailboxes and direct memory signals.

The paper's section 5.2.6 contrasts two signalling mechanisms:

* **Mailboxes** — the architected channel interface: a 4-entry inbound
  mailbox (PPE -> SPU) and a 1-entry outbound mailbox (SPU -> PPE).
  PPE-side mailbox access goes through MMIO and is slow.
* **Direct memory signalling** — the PPE writes a word straight into
  the SPE's local store (and the SPE commits results straight to main
  memory); the SPU busy-waits on the word.  This cut total RAxML time
  by 2-11 %, growing with parallelism.

Both are modelled here with latencies from :class:`CellTiming`, so the
micro-benchmarks can measure the per-offload signalling gap that the
cost model's calibration uses.
"""

from __future__ import annotations

from typing import Any, Generator

from .devsim import Get, Put, Simulator, Store, Timeout
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["Mailbox", "DirectSignal"]


class Mailbox:
    """An SPE mailbox pair (4-entry inbound, 1-entry outbound)."""

    INBOUND_DEPTH = 4
    OUTBOUND_DEPTH = 1

    def __init__(self, sim: Simulator, timing: CellTiming = DEFAULT_TIMING,
                 name: str = "mbox"):
        self.sim = sim
        self.timing = timing
        self.inbound: Store = sim.store(self.INBOUND_DEPTH, name=f"{name}-in")
        self.outbound: Store = sim.store(self.OUTBOUND_DEPTH, name=f"{name}-out")
        self.ppe_writes = 0
        self.spe_reads = 0

    # PPE side (slow MMIO path) ------------------------------------------------

    def ppe_write(self, value: Any) -> Generator:
        """PPE pushes a message to the SPU inbound mailbox (blocks if full)."""
        yield Timeout(self.timing.mailbox_latency_s)
        yield Put(self.inbound, value)
        self.ppe_writes += 1

    def ppe_read(self) -> Generator:
        """PPE pops the SPU outbound mailbox (blocks while empty)."""
        yield Timeout(self.timing.mailbox_latency_s)
        value = yield Get(self.outbound)
        return value

    # SPU side (fast channel path) ------------------------------------------------

    def spe_read(self) -> Generator:
        """SPU pops its inbound mailbox (blocks while empty)."""
        value = yield Get(self.inbound)
        self.spe_reads += 1
        return value

    def spe_write(self, value: Any) -> Generator:
        """SPU pushes to its outbound mailbox (blocks if un-drained)."""
        yield Put(self.outbound, value)


class DirectSignal:
    """Direct memory-to-memory signalling (the optimized path).

    The writer pays a small store latency; the reader polls a word.  The
    model charges the poll interval once (the average residual wait of a
    busy-wait loop) rather than simulating every poll iteration.
    """

    def __init__(self, sim: Simulator, timing: CellTiming = DEFAULT_TIMING,
                 name: str = "signal"):
        self.sim = sim
        self.timing = timing
        self.name = name
        self._slot: Store = sim.store(name=f"{name}-word")
        self.writes = 0

    def write(self, value: Any) -> Generator:
        """Store a value into the watched word."""
        yield Timeout(self.timing.direct_signal_latency_s)
        yield Put(self._slot, value)
        self.writes += 1

    def wait(self) -> Generator:
        """Busy-wait until a value arrives; returns it."""
        value = yield Get(self._slot)
        yield Timeout(self.timing.spe_poll_interval_s)
        return value
