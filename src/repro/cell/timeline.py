"""ASCII occupancy timelines of simulated Cell runs.

Renders the busy/idle pattern of the PPE and each SPE over a completed
simulation as a character chart — the textual equivalent of the Gantt
plots used to explain schedulers.  Each column is a time bucket; its
character encodes the bucket's busy fraction (`` ``, ``.``, ``:``,
``#`` for 0 / <50 / <90 / >=90 %).  The scheduling examples use this to
*show* EDTLP's PPE saturation and LLP's fan-out rather than just assert
them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .blade import CellChip

__all__ = ["occupancy_row", "render_timeline"]

_LEVELS = " .:#"

Span = Tuple[float, float, str]


def occupancy_row(spans: Sequence[Span], horizon: float,
                  width: int = 72) -> str:
    """One resource's occupancy chart over ``[0, horizon]``."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if width < 1:
        raise ValueError("width must be positive")
    bucket = horizon / width
    busy = [0.0] * width
    for start, end, _label in spans:
        if end <= start:
            continue
        first = min(int(start / bucket), width - 1)
        last = min(int(end / bucket - 1e-12), width - 1)
        for b in range(first, last + 1):
            lo = max(start, b * bucket)
            hi = min(end, (b + 1) * bucket)
            busy[b] += max(hi - lo, 0.0)
    out = []
    for value in busy:
        fraction = min(value / bucket, 1.0)
        if fraction <= 0.0:
            out.append(_LEVELS[0])
        elif fraction < 0.5:
            out.append(_LEVELS[1])
        elif fraction < 0.9:
            out.append(_LEVELS[2])
        else:
            out.append(_LEVELS[3])
    return "".join(out)


def render_timeline(chip: CellChip, horizon: Optional[float] = None,
                    width: int = 72, spes: Optional[Sequence[int]] = None
                    ) -> str:
    """Timeline of a chip's PPE and SPEs after a simulation has run.

    ``horizon`` defaults to the current simulated time; ``spes`` selects
    SPE indices (default: all that did any work).
    """
    horizon = chip.sim.now if horizon is None else horizon
    if horizon <= 0:
        return "(no simulated time elapsed)"
    lines: List[str] = []
    scale = (
        f"0{' ' * (width - len(f'{horizon:.3g}s') - 1)}{horizon:.3g}s"
    )
    lines.append(f"{'':>6} {scale}")
    lines.append(f"{'ppe':>6} {occupancy_row(chip.ppe.spans, horizon, width)}")
    indices = (
        [s.index for s in chip.spes if s.spans] if spes is None else spes
    )
    for index in indices:
        spe = chip.spes[index]
        lines.append(
            f"{f'spe{index}':>6} {occupancy_row(spe.spans, horizon, width)}"
        )
    lines.append(f"{'':>6} (busy fraction per column: ' '=0  .<50%  :<90%  #>=90%)")
    return "\n".join(lines)
