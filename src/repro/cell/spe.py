"""Synergistic Processing Element: SPU + local store + MFC channels.

An SPE bundles the compute engine (SPU), its 256 KB local store, its MFC
DMA queue and its signalling endpoints (paper section 4).  Offloaded
work arrives as :class:`KernelInvocation` descriptors whose duration the
caller computes (see :mod:`repro.port.profilemodel`); the SPE model
charges the time, tracks busy/idle accounting, and exposes the DMA and
signalling machinery for communication-accurate simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from .devsim import Simulator, Timeout
from .eib import EIB
from .localstore import LocalStore
from .mailbox import DirectSignal, Mailbox
from .mfc import MFC
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["SPE", "KernelInvocation"]


@dataclass(frozen=True)
class KernelInvocation:
    """One offloaded function execution, pre-costed by the cost model."""

    kernel: str  # "newview" | "makenewz" | "evaluate"
    compute_s: float  # SPU busy time
    dma_bytes_in: int = 0  # likelihood-vector strip-mining traffic
    dma_bytes_out: int = 0
    dma_wait_s: float = 0.0  # explicit stall (0 with double buffering)


class SPE:
    """One synergistic processing element on the simulated blade."""

    def __init__(self, sim: Simulator, eib: EIB, index: int,
                 timing: CellTiming = DEFAULT_TIMING):
        self.sim = sim
        self.timing = timing
        self.index = index
        self.local_store = LocalStore(timing.local_store_bytes)
        self.mfc = MFC(sim, eib, timing, name=f"spe{index}-mfc")
        self.mailbox = Mailbox(sim, timing, name=f"spe{index}")
        self.signal = DirectSignal(sim, timing, name=f"spe{index}")
        self.busy_time = 0.0
        self.kernel_count = 0
        self._thread_loaded = False
        #: (start, end, kernel) spans for timeline rendering (capped).
        self.spans = []
        self.max_spans = 20_000

    # -- thread lifecycle ----------------------------------------------------

    def load_offloaded_code(self, code_bytes: Optional[int] = None) -> None:
        """Load the offloaded-function module into the local store.

        Models the paper's single-module decision (section 5.2.7): the
        code is loaded once at thread creation and stays resident, so
        its footprint (117 KB for all three functions) is paid in local
        store, not in repeated loads.
        """
        if self._thread_loaded:
            raise RuntimeError("SPE thread already loaded")
        code = self.timing.offloaded_code_bytes if code_bytes is None else code_bytes
        self.local_store.reserve("code", code)
        self.local_store.reserve("stack", 16 * 1024)
        self._thread_loaded = True

    @property
    def thread_loaded(self) -> bool:
        return self._thread_loaded

    # -- execution ------------------------------------------------------------

    def execute(self, invocation: KernelInvocation,
                double_buffering: bool = True,
                buffer_bytes: int = 2 * 1024) -> Generator:
        """Process-generator: run one offloaded kernel invocation.

        DMA traffic is strip-mined through ``buffer_bytes`` chunks (the
        paper's tuned 2 KB).  With double buffering the transfers overlap
        compute and only a residual ``dma_wait_s`` (normally zero) is
        charged; without it, the SPU stalls for each chunk's round trip.
        """
        if not self._thread_loaded:
            raise RuntimeError("offloaded code not loaded on this SPE")
        start = self.sim.now
        total_bytes = invocation.dma_bytes_in + invocation.dma_bytes_out
        if total_bytes > 0:
            chunk = max(16, min(buffer_bytes, self.timing.dma_max_transfer_bytes))
            n_chunks = max(1, -(-total_bytes // chunk))
            if double_buffering:
                # Transfers stream in tag group 1 while compute proceeds;
                # only the explicitly modelled residual wait stalls.
                for _ in range(n_chunks):
                    self.mfc.dma_get(chunk, tag=1)
                yield Timeout(invocation.compute_s)
                if invocation.dma_wait_s > 0:
                    yield Timeout(invocation.dma_wait_s)
                yield from self.mfc.wait_tag(1)
            else:
                # Synchronous strip-mining: fetch, wait, compute, repeat.
                compute_per_chunk = invocation.compute_s / n_chunks
                for _ in range(n_chunks):
                    self.mfc.dma_get(chunk, tag=1)
                    yield from self.mfc.wait_tag(1)
                    yield Timeout(compute_per_chunk)
                if invocation.dma_wait_s > 0:
                    yield Timeout(invocation.dma_wait_s)
        else:
            yield Timeout(invocation.compute_s + invocation.dma_wait_s)
        self.busy_time += self.sim.now - start
        self.kernel_count += 1
        if len(self.spans) < self.max_spans:
            self.spans.append((start, self.sim.now, invocation.kernel))

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction since simulation start (or over *elapsed*)."""
        elapsed = self.sim.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed
