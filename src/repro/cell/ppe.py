"""Power Processing Element: the dual-SMT front-end core.

The PPE is a two-way SMT PowerPC core (paper section 4) that runs Linux,
hosts the MPI processes, and drives function offloading.  Two effects of
the paper's evaluation live here:

* **SMT contention** — two busy hardware threads each run slower than a
  lone thread.  The slowdown factor is calibrated from Table 1a (see
  :class:`~repro.cell.timing.CellTiming.ppe_smt_slowdown`): with the
  whole application on the PPE, 2 workers x 4 bootstraps take 207.67 s
  against 4 x 36.9 s of single-worker time.
* **Context switches** — the EDTLP scheduler oversubscribes the PPE with
  up to eight MPI processes and switches on every offload (paper
  section 5.3); each switch costs
  :attr:`~repro.cell.timing.CellTiming.context_switch_s`.
"""

from __future__ import annotations

from typing import Generator, Optional

from .devsim import Release, Request, Resource, Simulator, Timeout
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["PPE"]


class PPE:
    """The dual-SMT PPE with contention-aware compute accounting."""

    def __init__(self, sim: Simulator, timing: CellTiming = DEFAULT_TIMING):
        self.sim = sim
        self.timing = timing
        self._threads: Resource = sim.resource(
            timing.ppe_smt_threads, name="ppe-threads"
        )
        self.busy_time = 0.0
        self.context_switches = 0
        #: (start, end, label) spans for timeline rendering (capped).
        self.spans = []
        self.max_spans = 40_000

    @property
    def active_threads(self) -> int:
        return self._threads.in_use

    def compute(self, duration: float) -> Generator:
        """Process-generator: occupy one SMT thread for *duration* work.

        The wall-clock time charged is ``duration`` when this is the only
        busy hardware thread and ``duration * ppe_smt_slowdown`` when the
        sibling thread is busy too.  Occupancy is sampled when the work
        starts (a documented approximation: RAxML's PPE bursts are short
        relative to scheduling epochs).
        """
        if duration < 0:
            raise ValueError("negative compute duration")
        yield Request(self._threads)
        contended = self._threads.in_use >= 2
        factor = self.timing.ppe_smt_slowdown if contended else 1.0
        start = self.sim.now
        yield Timeout(duration * factor)
        self.busy_time += self.sim.now - start
        if len(self.spans) < self.max_spans:
            self.spans.append((start, self.sim.now, "compute"))
        yield Release(self._threads)

    def context_switch(self) -> Generator:
        """Process-generator: one process context switch on a thread."""
        self.context_switches += 1
        yield from self.compute(self.timing.context_switch_s)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        elapsed = self.sim.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.timing.ppe_smt_threads)
