"""A simulated Cell blade: PPE + 8 SPEs + EIB (x1 or x2 chips).

All results in the paper come from one processor of a dual-Cell blade at
the Barcelona Supercomputing Center (section 5): 3.2 GHz, 512 MB XDR.
:class:`CellBlade` wires the component models together and is the
platform object the schedulers in :mod:`repro.sched` drive.
"""

from __future__ import annotations

from typing import Dict, List

from .devsim import Simulator
from .eib import EIB
from .ppe import PPE
from .spe import SPE
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["CellChip", "CellBlade"]


class CellChip:
    """One Cell processor: a PPE, eight SPEs, and their EIB."""

    def __init__(self, sim: Simulator, timing: CellTiming = DEFAULT_TIMING,
                 chip_index: int = 0):
        self.sim = sim
        self.timing = timing
        self.chip_index = chip_index
        self.eib = EIB(sim, timing)
        self.ppe = PPE(sim, timing)
        self.spes: List[SPE] = [
            SPE(sim, self.eib, index=i, timing=timing)
            for i in range(timing.n_spes)
        ]

    def load_all_spe_threads(self, code_bytes: int = None) -> None:
        """Spawn-and-bind the offloaded-code thread on every SPE."""
        for spe in self.spes:
            spe.load_offloaded_code(code_bytes)

    def utilization_report(self) -> Dict[str, float]:
        """Busy fractions of each component at the current sim time."""
        report = {
            "ppe": self.ppe.utilization(),
            "eib": self.eib.utilization(),
        }
        for spe in self.spes:
            report[f"spe{spe.index}"] = spe.utilization()
        return report


class CellBlade:
    """A blade with one or two Cell chips sharing a simulator clock."""

    def __init__(self, n_chips: int = 1, timing: CellTiming = DEFAULT_TIMING):
        if n_chips not in (1, 2):
            raise ValueError("Cell blades have 1 or 2 chips")
        self.sim = Simulator()
        self.timing = timing
        self.chips: List[CellChip] = [
            CellChip(self.sim, timing, chip_index=i) for i in range(n_chips)
        ]

    @property
    def chip(self) -> CellChip:
        """The first chip (the paper uses a single processor)."""
        return self.chips[0]

    @property
    def all_spes(self) -> List[SPE]:
        return [spe for chip in self.chips for spe in chip.spes]

    def run(self, until=None) -> float:
        """Advance the simulation; returns the final simulated time."""
        return self.sim.run(until=until)
