"""Memory Flow Controller: the SPE's DMA engine.

Every SPE accesses main memory exclusively through its MFC (paper
section 4): transfers are at most 16 KB each, must be 1, 2, 4, 8 bytes
or a multiple of 16 bytes long, and large moves use DMA *lists* of up to
2,048 elements.  Commands are tagged (tag groups 0-31) and the SPU
blocks on a tag group when it needs the data — unless double buffering
hides the wait (paper section 5.2.4).

The MFC here is a queue of commands served asynchronously over the
shared :class:`~repro.cell.eib.EIB`; completion triggers per-tag-group
events the SPU process can wait on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Sequence

from .devsim import Event, Get, Simulator, Store, Timeout, Wait
from .eib import EIB
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["MFC", "DMAError", "DMACommand"]

#: Valid tag-group ids.
N_TAG_GROUPS = 32


class DMAError(ValueError):
    """An illegal DMA request (size, alignment, or list length)."""


@dataclass
class DMACommand:
    """One queued DMA transfer."""

    n_bytes: int
    tag: int
    direction: str  # "get" (mem -> LS) or "put" (LS -> mem)
    is_list_element: bool = False


class MFC:
    """One SPE's DMA queue, served over the shared EIB."""

    def __init__(self, sim: Simulator, eib: EIB,
                 timing: CellTiming = DEFAULT_TIMING, name: str = "mfc"):
        self.sim = sim
        self.eib = eib
        self.timing = timing
        self.name = name
        self._queue: Store = sim.store(name=f"{name}-queue")
        self._pending: Dict[int, int] = {tag: 0 for tag in range(N_TAG_GROUPS)}
        self._tag_events: Dict[int, Event] = {}
        self.bytes_moved = 0
        self.commands_served = 0
        sim.spawn(self._server(), name=f"{name}-server", daemon=True)

    # -- validation ---------------------------------------------------------

    def validate_size(self, n_bytes: int) -> None:
        """Apply the MFC's size rules (paper section 4)."""
        if n_bytes <= 0:
            raise DMAError(f"DMA size must be positive, got {n_bytes}")
        if n_bytes > self.timing.dma_max_transfer_bytes:
            raise DMAError(
                f"DMA transfer of {n_bytes} B exceeds the "
                f"{self.timing.dma_max_transfer_bytes} B limit; use a DMA list"
            )
        if n_bytes in self.timing.dma_small_sizes:
            return
        if n_bytes % self.timing.dma_alignment_bytes != 0:
            raise DMAError(
                f"DMA size {n_bytes} is not 1/2/4/8 or a multiple of "
                f"{self.timing.dma_alignment_bytes} bytes"
            )

    def _validate_tag(self, tag: int) -> None:
        if not 0 <= tag < N_TAG_GROUPS:
            raise DMAError(f"tag group must be in [0, {N_TAG_GROUPS}), got {tag}")

    # -- issue API (non-blocking, like mfc_get / mfc_put) ----------------------

    def dma_get(self, n_bytes: int, tag: int = 0) -> None:
        """Queue a main-memory -> local-store transfer."""
        self._issue(DMACommand(n_bytes, tag, "get"))

    def dma_put(self, n_bytes: int, tag: int = 0) -> None:
        """Queue a local-store -> main-memory transfer."""
        self._issue(DMACommand(n_bytes, tag, "put"))

    def dma_list(self, sizes: Sequence[int], tag: int = 0,
                 direction: str = "get") -> None:
        """Queue a DMA-list transfer (for moves larger than 16 KB)."""
        if not sizes:
            raise DMAError("empty DMA list")
        if len(sizes) > self.timing.dma_list_max_entries:
            raise DMAError(
                f"DMA list of {len(sizes)} entries exceeds the "
                f"{self.timing.dma_list_max_entries}-entry limit"
            )
        for size in sizes:
            self._issue(DMACommand(size, tag, direction, is_list_element=True))

    def _issue(self, command: DMACommand) -> None:
        self.validate_size(command.n_bytes)
        self._validate_tag(command.tag)
        if command.direction not in ("get", "put"):
            raise DMAError(f"unknown DMA direction {command.direction!r}")
        self._pending[command.tag] += 1
        if not self._queue.try_put(command):
            raise DMAError("MFC queue refused command")  # pragma: no cover

    # -- completion waiting -------------------------------------------------------

    def tag_pending(self, tag: int) -> int:
        """Outstanding commands in a tag group."""
        self._validate_tag(tag)
        return self._pending[tag]

    def wait_tag(self, tag: int) -> Generator:
        """Process-generator: block until tag group *tag* drains.

        This is the SPU-side ``mfc_read_tag_status_all()`` stall — the
        11.4 % of ``newview()`` time that double buffering eliminated.
        """
        self._validate_tag(tag)
        while self._pending[tag] > 0:
            event = self._tag_events.get(tag)
            if event is None or event.triggered:
                event = self.sim.event(name=f"{self.name}-tag{tag}")
                self._tag_events[tag] = event
            yield Wait(event)

    # -- server --------------------------------------------------------------------

    def _server(self) -> Generator:
        """Serve queued commands in order over the EIB."""
        while True:
            command = yield Get(self._queue)
            latency = self.timing.dma_latency_s
            if command.is_list_element:
                latency = self.timing.dma_list_element_overhead_s
            yield Timeout(latency)
            yield from self.eib.transfer(command.n_bytes)
            self.bytes_moved += command.n_bytes
            self.commands_served += 1
            self._pending[command.tag] -= 1
            if self._pending[command.tag] == 0:
                event = self._tag_events.pop(command.tag, None)
                if event is not None and not event.triggered:
                    event.succeed(self.sim.now)
