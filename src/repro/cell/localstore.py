"""SPE local store model: 256 KB of software-managed memory.

The local store is the unified instruction+data memory of an SPU (paper
section 4): code, stack, heap, and DMA staging buffers all compete for
the same 256 KB.  The paper leans on this constraint twice: the three
offloaded functions total 117 KB of code (leaving 139 KB free), and the
likelihood-vector strip-mining buffer is deliberately kept at 2 KB so
the ``newview()`` recursion cannot overflow the store (section 5.2.4).

This model does byte-accurate segment accounting and raises
:class:`LocalStoreOverflow` when an allocation would not fit — the same
failure that would force manual code overlays on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["LocalStore", "LocalStoreOverflow", "BufferPool"]


class LocalStoreOverflow(MemoryError):
    """An allocation exceeded the SPE's local store capacity."""


@dataclass
class _Segment:
    label: str
    n_bytes: int


class LocalStore:
    """Byte-accounted allocation of one SPE's local store."""

    def __init__(self, capacity_bytes: int = 256 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._segments: Dict[str, _Segment] = {}
        self.high_water_bytes = 0

    @property
    def used_bytes(self) -> int:
        return sum(s.n_bytes for s in self._segments.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def reserve(self, label: str, n_bytes: int) -> None:
        """Allocate a named segment; raises on overflow or relabeling."""
        if n_bytes < 0:
            raise ValueError("segment size must be non-negative")
        if label in self._segments:
            raise ValueError(f"segment {label!r} already reserved")
        if n_bytes > self.free_bytes:
            raise LocalStoreOverflow(
                f"segment {label!r} needs {n_bytes} B but only "
                f"{self.free_bytes} B of {self.capacity_bytes} B remain "
                "(code overlays would be required)"
            )
        self._segments[label] = _Segment(label, n_bytes)
        self.high_water_bytes = max(self.high_water_bytes, self.used_bytes)

    def release(self, label: str) -> None:
        """Free a named segment."""
        try:
            del self._segments[label]
        except KeyError:
            raise KeyError(f"no segment {label!r} to release") from None

    def resize(self, label: str, n_bytes: int) -> None:
        """Grow or shrink an existing segment (e.g. the heap)."""
        if label not in self._segments:
            raise KeyError(f"no segment {label!r}")
        current = self._segments[label].n_bytes
        if n_bytes - current > self.free_bytes:
            raise LocalStoreOverflow(
                f"resizing {label!r} to {n_bytes} B exceeds local store"
            )
        self._segments[label].n_bytes = n_bytes
        self.high_water_bytes = max(self.high_water_bytes, self.used_bytes)

    def segments(self) -> Dict[str, int]:
        """Snapshot of current segment sizes."""
        return {label: seg.n_bytes for label, seg in self._segments.items()}


class BufferPool:
    """DMA staging buffers carved out of a local store.

    Double buffering (paper section 5.2.4) uses a pool of two buffers: one
    being computed on while the other is filled by the MFC.  The paper's
    tuned size is 2 KB per buffer — enough for 16 loop iterations of
    likelihood-vector data.
    """

    def __init__(self, store: LocalStore, n_buffers: int, buffer_bytes: int,
                 label: str = "dma-buffers"):
        if n_buffers < 1:
            raise ValueError("need at least one buffer")
        self.store = store
        self.n_buffers = n_buffers
        self.buffer_bytes = buffer_bytes
        self.label = label
        store.reserve(label, n_buffers * buffer_bytes)
        self._free: List[int] = list(range(n_buffers))

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self) -> int:
        """Take a buffer index; raises if none are free."""
        if not self._free:
            raise LocalStoreOverflow(
                f"all {self.n_buffers} buffers of pool {self.label!r} in use"
            )
        return self._free.pop(0)

    def release_buffer(self, index: int) -> None:
        if index in self._free or not (0 <= index < self.n_buffers):
            raise ValueError(f"bad buffer index {index}")
        self._free.append(index)

    def close(self) -> None:
        """Return the pool's bytes to the local store."""
        self.store.release(self.label)

    def iterations_per_fill(self, bytes_per_iteration: int) -> int:
        """How many loop iterations one buffer fill covers (paper: 16)."""
        if bytes_per_iteration <= 0:
            raise ValueError("bytes_per_iteration must be positive")
        return self.buffer_bytes // bytes_per_iteration
