"""Discrete-event simulator of the Cell Broadband Engine.

The paper's hardware platform — a 3.2 GHz Cell blade with one PPE and
eight SPEs — is not available to a Python reproduction, so this package
models it: local stores with byte accounting, MFC DMA queues with the
architected size/alignment/list rules, the four-ring EIB with bandwidth
arbitration, mailbox vs. direct-memory signalling, and the dual-SMT PPE
with calibrated contention.  See DESIGN.md section 2 for the
substitution argument and calibration sources.
"""

from .blade import CellBlade, CellChip
from .devsim import (
    Event,
    Get,
    Process,
    Put,
    Release,
    Request,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
    Wait,
)
from .eib import EIB
from .localstore import BufferPool, LocalStore, LocalStoreOverflow
from .mailbox import DirectSignal, Mailbox
from .mfc import DMACommand, DMAError, MFC
from .ppe import PPE
from .spe import SPE, KernelInvocation
from .spu_cost import NewviewWorkload, SPUCostEstimate, estimate_newview
from .timeline import occupancy_row, render_timeline
from .timing import CellTiming, DEFAULT_TIMING

__all__ = [
    "CellBlade",
    "CellChip",
    "Event",
    "Get",
    "Process",
    "Put",
    "Release",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "Wait",
    "EIB",
    "BufferPool",
    "LocalStore",
    "LocalStoreOverflow",
    "DirectSignal",
    "Mailbox",
    "DMACommand",
    "DMAError",
    "MFC",
    "PPE",
    "SPE",
    "KernelInvocation",
    "NewviewWorkload",
    "SPUCostEstimate",
    "estimate_newview",
    "occupancy_row",
    "render_timeline",
    "CellTiming",
    "DEFAULT_TIMING",
]
