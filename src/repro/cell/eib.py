"""The Element Interconnect Bus (EIB).

The EIB is a four-ring bus connecting the PPE, the eight SPEs, the
memory controller and the I/O interfaces (paper section 4): 96 bytes per
cycle aggregate (204.8 GB/s at 3.2 GHz), supporting over 100 outstanding
DMA requests.

Model: each data transfer occupies one of the four rings for
``bytes / (bandwidth / rings)`` seconds after a fixed arbitration
latency.  With four or fewer concurrent transfers each gets a full
ring's bandwidth; beyond that, transfers queue — reproducing the
bandwidth ceiling without modelling per-hop ring topology.
"""

from __future__ import annotations

from typing import Generator, Optional

from .devsim import Release, Request, SimulationError, Simulator, Timeout
from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["EIB"]


class EIB:
    """Bandwidth-arbitrated transfer service on the simulator clock."""

    def __init__(self, sim: Simulator, timing: CellTiming = DEFAULT_TIMING):
        self.sim = sim
        self.timing = timing
        self._rings = sim.resource(timing.eib_rings, name="eib-rings")
        self._outstanding = 0
        self.bytes_transferred = 0
        self.transfers_completed = 0
        self.busy_time = 0.0

    @property
    def ring_bandwidth(self) -> float:
        """Bytes per second available to one transfer."""
        return self.timing.eib_bandwidth_bytes_per_s / self.timing.eib_rings

    def transfer(self, n_bytes: int) -> Generator:
        """Process-generator: move *n_bytes* across the bus.

        ``yield from`` this from an MFC command handler.  Enforces the
        outstanding-request cap the paper quotes (>100 supported; we use
        the documented 100 as the limit).
        """
        if n_bytes < 0:
            raise SimulationError("negative transfer size")
        if self._outstanding >= self.timing.eib_max_outstanding:
            raise SimulationError(
                f"exceeded {self.timing.eib_max_outstanding} outstanding "
                "EIB requests"
            )
        self._outstanding += 1
        try:
            yield Request(self._rings)
            start = self.sim.now
            yield Timeout(n_bytes / self.ring_bandwidth)
            self.busy_time += self.sim.now - start
            yield Release(self._rings)
            self.bytes_transferred += n_bytes
            self.transfers_completed += 1
        finally:
            self._outstanding -= 1

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of aggregate bandwidth used over *elapsed* seconds."""
        elapsed = self.sim.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.bytes_transferred / (
            self.timing.eib_bandwidth_bytes_per_s * elapsed
        )
