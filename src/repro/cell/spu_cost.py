"""First-principles SPU cycle estimation for the likelihood kernels.

The cost model of :mod:`repro.port.profilemodel` derives its component
times from the paper's measured tables.  This module approaches the
same quantities from below: given the instruction-level workload of one
``newview()`` invocation (the paper quotes 25,554 DP FLOPs, ~150
``exp()`` calls, a 228-iteration large loop with an 8-comparison
scaling conditional), estimate cycles from the SPU's architected issue
rates.  The ``firstprinciples`` experiment compares the two views; the
gap is the sustained-vs-peak inefficiency of in-order SPUs on
pointer-heavy code, which the estimator deliberately does not model.

Instruction-cost assumptions (documented, order-of-magnitude):

* DP floating point: 2 ops per 6 cycles, x2 SIMD when vectorized
  (paper section 4).
* ``exp()``: the math-library double-precision software exponential
  costs thousands of cycles on an SPU (no DP divide/branch hints);
  the Cell SDK numerical version costs on the order of a hundred.
* DP comparison: the SPU has **no** double-precision compare
  instruction — it is emulated in software (tens of cycles), which is
  precisely why the paper's integer cast wins; integer compares are
  single-cycle and SIMD-able.
* Mispredicted branches: ~20 cycles (paper section 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .timing import CellTiming, DEFAULT_TIMING

__all__ = ["NewviewWorkload", "SPUCostEstimate", "estimate_newview"]

#: Software-emulated DP comparison cost (cycles per compare).
DP_COMPARE_CYCLES = 25.0
#: Integer comparison cost after the cast (cycles, amortized over SIMD).
INT_COMPARE_CYCLES = 1.0
#: Math-library double exp() on the SPU (cycles per call).
EXP_LIBRARY_CYCLES = 4000.0
#: Cell SDK numerical exp() (cycles per call; a pipelined polynomial).
EXP_SDK_CYCLES = 100.0
#: Comparisons per scaling-conditional evaluation (4 ABS + 4 compares).
COMPARES_PER_CHECK = 8
#: Branch misprediction probability assumed for the float conditional.
BRANCH_MISS_RATE = 0.5


@dataclass(frozen=True)
class NewviewWorkload:
    """Instruction-level description of one ``newview()`` invocation.

    Defaults are the paper's ``42_SC`` figures (sections 5.2.2-5.2.5).
    """

    fp_ops: int = 25_554
    exp_calls: int = 150
    large_loop_iterations: int = 228
    n_categories: int = 4

    @property
    def conditional_checks(self) -> int:
        """The scaling check runs once per pattern per category."""
        return self.large_loop_iterations * self.n_categories


@dataclass(frozen=True)
class SPUCostEstimate:
    """Per-invocation cycle/second breakdown from issue rates."""

    cycles: Dict[str, float]
    timing: CellTiming

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def total_seconds(self) -> float:
        return self.timing.cycles(self.total_cycles)

    def seconds(self, component: str) -> float:
        return self.timing.cycles(self.cycles[component])


def estimate_newview(
    workload: NewviewWorkload = NewviewWorkload(),
    vectorized: bool = False,
    sdk_exp: bool = False,
    int_conditionals: bool = False,
    timing: CellTiming = DEFAULT_TIMING,
) -> SPUCostEstimate:
    """Bottom-up cycle estimate of one ``newview()`` under a config."""
    # Floating-point issue: 2 DP ops per 6 cycles; SIMD doubles that.
    dp_per_cycle = timing.dp_ops_per_issue / timing.dp_issue_interval_cycles
    if vectorized:
        dp_per_cycle *= timing.dp_simd_width
    fp_cycles = workload.fp_ops / dp_per_cycle

    exp_cycles = workload.exp_calls * (
        EXP_SDK_CYCLES if sdk_exp else EXP_LIBRARY_CYCLES
    )

    checks = workload.conditional_checks
    if int_conditionals:
        cond_cycles = checks * COMPARES_PER_CHECK * INT_COMPARE_CYCLES
    else:
        cond_cycles = checks * (
            COMPARES_PER_CHECK * DP_COMPARE_CYCLES
            + BRANCH_MISS_RATE * timing.branch_miss_penalty_cycles
        )

    return SPUCostEstimate(
        cycles={
            "fp": fp_cycles,
            "exp": exp_cycles,
            "conditional": cond_cycles,
        },
        timing=timing,
    )
