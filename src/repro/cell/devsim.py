"""Discrete-event simulation core.

A compact process-based simulator (in the style of SimPy, implemented
from scratch): *processes* are Python generators that yield requests —
time-outs, waits on events, FIFO-resource acquisitions, or store
get/puts — and the :class:`Simulator` interleaves them on a virtual
clock.  All Cell components (MFC DMA queues, mailboxes, the EIB, PPE
threads, SPEs) and the task-level schedulers are built on this core.

Determinism: events at equal times fire in scheduling order (a strictly
increasing sequence number breaks ties), so simulations are exactly
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Wait",
    "Request",
    "Release",
    "Get",
    "Put",
    "Resource",
    "Store",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation API."""


class Event:
    """A one-shot event processes can wait on; carries a value."""

    __slots__ = ("sim", "value", "triggered", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.value: Any = None
        self.triggered = False
        self._waiters: List["Process"] = []
        self.name = name

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule_resume(process, value)

    def add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(process, self.value)
        else:
            self._waiters.append(process)


# -- yieldable request objects -------------------------------------------------


class Timeout:
    """``yield Timeout(delay)`` — resume after *delay* time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Wait:
    """``yield Wait(event)`` — resume when *event* triggers; returns its value."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event


class Request:
    """``yield Request(resource)`` — acquire one unit (FIFO)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class Release:
    """``yield Release(resource)`` — give back one unit."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class Get:
    """``yield Get(store)`` — pop the next item (blocks while empty)."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        self.store = store


class Put:
    """``yield Put(store, item)`` — push an item (blocks while full)."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        self.store = store
        self.item = item


class Resource:
    """A counted FIFO resource (e.g. an SPE, a PPE hardware thread)."""

    __slots__ = ("sim", "capacity", "in_use", "_queue", "name")

    def __init__(self, sim: "Simulator", capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queue: List["Process"] = []
        self.name = name

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def _request(self, process: "Process") -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.sim._schedule_resume(process, self)
        else:
            self._queue.append(process)

    def _release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the unit straight to the next waiter.
            process = self._queue.pop(0)
            self.sim._schedule_resume(process, self)
        else:
            self.in_use -= 1


class Store:
    """A FIFO item queue with optional capacity (e.g. a mailbox)."""

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters", "name")

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List["Process"] = []
        self._putters: List[Tuple["Process", Any]] = []
        self.name = name

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def _get(self, process: "Process") -> None:
        if self.items:
            item = self.items.pop(0)
            self.sim._schedule_resume(process, item)
            if self._putters and not self.is_full:
                putter, pending = self._putters.pop(0)
                self.items.append(pending)
                self.sim._schedule_resume(putter, None)
        else:
            self._getters.append(process)

    def _put(self, process: "Process", item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            self.sim._schedule_resume(getter, item)
            self.sim._schedule_resume(process, None)
        elif not self.is_full:
            self.items.append(item)
            self.sim._schedule_resume(process, None)
        else:
            self._putters.append((process, item))

    def try_put(self, item: Any) -> bool:
        """Non-blocking put from outside a process context."""
        if self._getters:
            getter = self._getters.pop(0)
            self.sim._schedule_resume(getter, item)
            return True
        if not self.is_full:
            self.items.append(item)
            return True
        return False


class Process:
    """A running generator; ``done_event`` triggers with its return value."""

    __slots__ = ("sim", "generator", "done_event", "name", "finished",
                 "daemon")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "",
                 daemon: bool = False):
        self.sim = sim
        self.generator = generator
        self.done_event = Event(sim, name=f"done:{name}")
        self.name = name
        self.finished = False
        #: daemons (e.g. MFC command servers) run forever by design and
        #: are excluded from quiescence diagnostics.
        self.daemon = daemon

    def _step(self, send_value: Any) -> None:
        try:
            request = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.done_event.succeed(stop.value)
            return
        if isinstance(request, Timeout):
            self.sim._schedule_at(self.sim.now + request.delay, self, None)
        elif isinstance(request, Wait):
            request.event.add_waiter(self)
        elif isinstance(request, Request):
            request.resource._request(self)
        elif isinstance(request, Release):
            request.resource._release()
            self.sim._schedule_resume(self, None)
        elif isinstance(request, Get):
            request.store._get(self)
        elif isinstance(request, Put):
            request.store._put(self, request.item)
        elif isinstance(request, Process):
            # yield another process == wait for its completion
            request.done_event.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {request!r}"
            )


class Simulator:
    """The virtual clock and event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable, Any]] = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self._processes: List[Process] = []

    # -- construction helpers ---------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def resource(self, capacity: int, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def store(self, capacity: Optional[int] = None, name: str = "") -> Store:
        return Store(self, capacity, name)

    def spawn(self, generator: Generator, name: str = "",
              daemon: bool = False) -> Process:
        """Start a new process; its first step runs at the current time.

        ``daemon=True`` marks perpetual service loops (excluded from
        :meth:`unfinished_processes`).
        """
        process = Process(self, generator, name, daemon=daemon)
        self._processes.append(process)
        self._schedule_at(self.now, process, None)
        return process

    def unfinished_processes(self) -> List[Process]:
        """Processes that have not run to completion.

        After :meth:`run` drains the event queue, any process still
        here is *blocked* — waiting on an event that will never fire, a
        store nobody fills, or a resource nobody releases.  The usual
        cause is a deadlocked protocol; :meth:`assert_quiescent` turns
        that silence into a diagnosable error.
        """
        return [p for p in self._processes if not p.finished and not p.daemon]

    def assert_quiescent(self) -> None:
        """Raise if blocked processes remain after the queue drained."""
        blocked = self.unfinished_processes()
        if blocked:
            names = ", ".join(p.name or "<anonymous>" for p in blocked[:10])
            raise SimulationError(
                f"{len(blocked)} process(es) blocked at t={self.now}: "
                f"{names}"
            )

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback (no process context)."""
        if time < self.now:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(
            self._heap, (time, next(self._sequence), lambda _value: fn(), None)
        )

    # -- internal scheduling ------------------------------------------------

    def _schedule_at(self, time: float, process: Process, value: Any) -> None:
        heapq.heappush(
            self._heap, (time, next(self._sequence), process._step, value)
        )

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self._schedule_at(self.now, process, value)

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the event queue; returns the final simulated time."""
        while self._heap:
            time, _seq, fn, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            if max_events is not None and self.events_processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events — runaway simulation?"
                )
            fn(value)
        return self.now
