"""Cell Broadband Engine architecture constants.

Every number here is either quoted directly in the paper (section 4 and
section 5.2.3) or taken from the public Cell documentation the paper
cites (Kistler et al., *Cell Multiprocessor Communication Network: Built
for Speed*, IEEE Micro 2006; the IBM CBE tutorial).  These constants
parameterize both the component-level simulator (:mod:`repro.cell`) and
the calibrated kernel cost model (:mod:`repro.port.profilemodel`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CellTiming", "DEFAULT_TIMING"]


@dataclass(frozen=True)
class CellTiming:
    """Timing/geometry parameters of one Cell BE chip."""

    # --- clocks (paper section 1/4: "3.2 GHz for current models") ---
    clock_hz: float = 3.2e9

    # --- chip geometry (paper section 4) ---
    n_spes: int = 8
    ppe_smt_threads: int = 2

    # --- SPU floating point issue (paper section 4) ---
    # "All single precision floating point operations on the SPU are
    #  fully pipelined, and the SPU can issue one single-precision
    #  floating point operation per cycle."
    sp_issue_per_cycle: float = 1.0
    # "Double precision floating point operations are partially
    #  pipelined and two double-precision floating point operations can
    #  be issued every six cycles."
    dp_ops_per_issue: float = 2.0
    dp_issue_interval_cycles: float = 6.0
    # Paper-quoted aggregate peaks (8 SPEs, SIMD+FMA):
    peak_dp_gflops: float = 21.03
    peak_sp_gflops: float = 230.4
    # SIMD width: a 128-bit register holds two doubles / four floats.
    dp_simd_width: int = 2
    sp_simd_width: int = 4

    # --- branches (paper section 5.2.3, citing the IBM CBE tutorial) ---
    # "Mispredicted branches ... incur a penalty of approximately 20
    #  cycles."
    branch_miss_penalty_cycles: float = 20.0

    # --- local store (paper section 4) ---
    local_store_bytes: int = 256 * 1024
    # "the code footprints of the offloaded functions are small enough
    #  (117 Kbytes in total) ... still leave 139 Kbytes free"
    offloaded_code_bytes: int = 117 * 1024

    # --- MFC / DMA (paper section 4) ---
    dma_max_transfer_bytes: int = 16 * 1024
    dma_list_max_entries: int = 2048
    # "The MFC supports only DMA transfer sizes that are 1, 2, 4, 8 or
    #  multiples of 16 bytes long", 128-bit alignment.
    dma_alignment_bytes: int = 16
    dma_small_sizes: tuple = (1, 2, 4, 8)
    # Small-transfer DMA latency (local store <-> main memory), from
    # Kistler et al. (IEEE Micro 2006): on the order of a hundred ns.
    dma_latency_s: float = 100e-9
    # Per-element overhead of a DMA-list transfer.
    dma_list_element_overhead_s: float = 20e-9

    # --- EIB (paper section 4) ---
    # "a 4-ring structure ... can transmit 96 bytes per cycle, for a
    #  bandwidth of 204.8 Gigabytes/second ... more than 100 outstanding
    #  DMA requests."
    eib_rings: int = 4
    eib_bytes_per_cycle: float = 96.0
    eib_bandwidth_bytes_per_s: float = 204.8e9
    eib_max_outstanding: int = 100

    # --- XDR memory bandwidth (Cell BE public spec, 25.6 GB/s) ---
    memory_bandwidth_bytes_per_s: float = 25.6e9

    # --- PPE <-> SPE signalling ---
    # Mailbox access from the PPE goes through MMIO and is slow (~ a
    # microsecond round trip per IBM programming guidance); direct
    # writes into SPE local store / main memory avoid the MMIO stall.
    # The paper's section 5.2.6 measures a 2-11 % total-time gain from
    # replacing mailboxes; these latencies are calibrated to that range.
    mailbox_latency_s: float = 2.2e-6
    direct_signal_latency_s: float = 0.3e-6
    # SPU-side busy-wait poll interval on the signal word.
    spe_poll_interval_s: float = 0.05e-6

    # --- PPE scheduling ---
    # Process context switch on the PPE (Linux, per-switch direct cost).
    context_switch_s: float = 3.0e-6
    # SMT slowdown: with both PPE hardware threads busy each runs this
    # factor slower.  Derived from the paper's Table 1a:
    # (2 workers, 8 bootstraps) / (4 x single-worker time)
    # = 207.67 / (4 * 36.9) = 1.407.
    ppe_smt_slowdown: float = 207.67 / (4 * 36.9)

    # -- derived helpers ------------------------------------------------------

    @property
    def cycle_s(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / self.clock_hz

    def cycles(self, n: float) -> float:
        """Seconds taken by *n* cycles."""
        return n / self.clock_hz

    def dp_flops_per_second_scalar(self) -> float:
        """Sustained scalar DP issue rate of one SPU (no SIMD)."""
        return self.clock_hz * self.dp_ops_per_issue / self.dp_issue_interval_cycles

    def dma_transfer_time(self, n_bytes: int) -> float:
        """Latency + EIB-bandwidth time of a single DMA transfer."""
        if n_bytes <= 0:
            return 0.0
        return self.dma_latency_s + n_bytes / self.eib_bandwidth_bytes_per_s


#: The 3.2 GHz Cell blade configuration used throughout the paper.
DEFAULT_TIMING = CellTiming()
