"""Every number the paper reports, as structured data.

These values serve two purposes:

1. **Calibration inputs** — the cost model derives its per-component
   constants algebraically from the staged tables (see
   :mod:`repro.port.profilemodel` for the derivations).
2. **Reporting targets** — the harness prints paper-vs-measured for
   each experiment (EXPERIMENTS.md).

Table keys are ``(workers, bootstraps)`` pairs; all times in seconds.
"""

from __future__ import annotations

from types import MappingProxyType

__all__ = [
    "PROFILE_SHARES",
    "TABLES",
    "TABLE8",
    "FIGURE3_BOOTSTRAPS",
    "NEWVIEW_CALLS",
    "NEWVIEW_AVG_S",
    "NEWVIEW_FLOPS_PER_CALL",
    "EXP_CALLS_PER_NEWVIEW",
    "PATTERNS_42SC",
    "SITES_42SC",
    "TAXA_42SC",
    "POWER_WATTS",
    "SECTION52_FRACTIONS",
]

#: gprof profile on the Power5 (section 5.2): fraction of sequential
#: RAxML runtime per function.
PROFILE_SHARES = MappingProxyType(
    {
        "newview": 0.768,
        "makenewz": 0.1916,
        "evaluate": 0.0237,
        "other": 1.0 - 0.768 - 0.1916 - 0.0237,  # 0.0167
    }
)

#: The staged optimization tables (sections 5.2.1-5.2.7), keyed by
#: (workers, bootstraps).  Every row uses the 42_SC input.
TABLES = MappingProxyType(
    {
        # Table 1a: whole application on the PPE.
        "table1a": MappingProxyType(
            {(1, 1): 36.9, (2, 8): 207.67, (2, 16): 427.95, (2, 32): 824.0}
        ),
        # Table 1b: newview() naively offloaded to one SPE.
        "table1b": MappingProxyType(
            {(1, 1): 106.37, (2, 8): 459.16, (2, 16): 915.75, (2, 32): 1836.6}
        ),
        # Table 2: + SDK exp().
        "table2": MappingProxyType(
            {(1, 1): 62.8, (2, 8): 285.25, (2, 16): 572.92, (2, 32): 1138.5}
        ),
        # Table 3: + integer-cast / vectorized conditionals.
        "table3": MappingProxyType(
            {(1, 1): 49.3, (2, 8): 230.0, (2, 16): 460.43, (2, 32): 917.09}
        ),
        # Table 4: + double buffering (2 KB transfers).
        "table4": MappingProxyType(
            {(1, 1): 47.0, (2, 8): 220.92, (2, 16): 441.39, (2, 32): 884.47}
        ),
        # Table 5: + SIMD vectorization of the FP loops.
        "table5": MappingProxyType(
            {(1, 1): 40.9, (2, 8): 195.7, (2, 16): 393.0, (2, 32): 800.9}
        ),
        # Table 6: + direct memory-to-memory communication.
        "table6": MappingProxyType(
            {(1, 1): 39.9, (2, 8): 180.46, (2, 16): 357.08, (2, 32): 712.2}
        ),
        # Table 7: + makenewz() and evaluate() offloaded too.
        "table7": MappingProxyType(
            {(1, 1): 27.7, (2, 8): 112.41, (2, 16): 224.69, (2, 32): 444.87}
        ),
    }
)

#: Table 8: the dynamic MGPS scheduler; keyed by bootstraps (the worker
#: count is chosen at runtime by the scheduler).
TABLE8 = MappingProxyType({1: 17.6, 8: 42.18, 16: 84.21, 32: 167.57})

#: Figure 3 sweeps these bootstrap counts on Cell/Power5/Xeon.
FIGURE3_BOOTSTRAPS = (1, 8, 16, 32, 64, 128)

#: Section 5.2.6: newview() invocations for one 42_SC run, and the
#: average per-invocation time at the table-6 optimization stage.
NEWVIEW_CALLS = 230_500
NEWVIEW_AVG_S = 71e-6

#: Section 5.2.2: average FP operations per newview() invocation
#: (65 % multiplications, 34 % additions) and exp() call count.
NEWVIEW_FLOPS_PER_CALL = 25_554
EXP_CALLS_PER_NEWVIEW = 150

#: The 42_SC dataset dimensions (sections 5.2, 5.2.5).
TAXA_42SC = 42
SITES_42SC = 1167
PATTERNS_42SC = 250  # "on the order of 250"; the large loop runs 228 iters
LARGE_LOOP_ITERATIONS = 228

#: Nominal power draw (watts) quoted or publicly documented for the
#: Figure 3 platforms.  The paper (sections 1 and 6): Cell "power
#: consumption comparable to that of mobile processors", "nominal power
#: consumption in the range of 27W to 43W for a 3.2 GHz model (used in
#: this study)", "a reported 150W for the Power5".  The Xeon value is
#: the public TDP of a 2 GHz Pentium 4 Xeon (not quoted in the paper).
POWER_WATTS = MappingProxyType(
    {
        "cell_min": 27.0,
        "cell_max": 43.0,
        "power5": 150.0,
        "xeon_per_chip": 77.0,
    }
)

#: Scattered profiling fractions from section 5.2 used as secondary
#: calibration checks (the primary calibration is the table chain).
SECTION52_FRACTIONS = MappingProxyType(
    {
        "exp_share_of_unoptimized_spe": 0.50,  # sec 5.2.2
        "conditional_share_before": 0.45,  # sec 5.2.3
        "conditional_share_after": 0.06,  # sec 5.2.3
        "dma_wait_share": 0.114,  # sec 5.2.4
        "loops_share_before_simd": 0.694,  # sec 5.2.5
        "loops_share_after_simd": 0.57,  # sec 5.2.5
        "loops_seconds_before_simd": 19.57,  # sec 5.2.5
        "loops_seconds_after_simd": 11.48,  # sec 5.2.5
    }
)
