"""Workload tracing: recording the kernel-call mix of a real search.

The paper's porting effort started from a gprof profile: 98.77 % of
RAxML's time in ``newview()`` (76.8 %), ``makenewz()`` (19.16 %) and
``evaluate()`` (2.37 %); 230,500 ``newview()`` invocations at 71 µs
average for one ``42_SC`` run.  This module plays the role of that
profiler for the reproduction: a :class:`Tracer` attached to the
likelihood engine records every kernel invocation with the parameters a
Cell port's cost depends on (pattern count, category count, case,
Newton iterations, nesting).  A :class:`TraceSummary` aggregates a trace
into the per-task workload descriptor that
:mod:`repro.port.profilemodel` prices on each platform.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..phylo import kernels as _k
from ..phylo.engine import NewviewCase

__all__ = ["KernelEvent", "Tracer", "TraceSummary", "NESTED_TOP"]

#: Marker for events not nested inside a makenewz/evaluate offload unit.
NESTED_TOP = "top"


@dataclass(frozen=True)
class KernelEvent:
    """One recorded kernel invocation."""

    kernel: str  # "newview" | "makenewz" | "evaluate" | "spr_batch" | "gradient"
    n_patterns: int
    n_cats: int
    case: str = ""  # newview only: one of NewviewCase
    iterations: int = 0  # makenewz/spr_batch: Newton iterations
    scaled: int = 0  # newview only: patterns rescaled
    context: str = NESTED_TOP  # enclosing offload unit
    batch: int = 1  # spr_batch only: candidates scored in one call

    @property
    def is_nested(self) -> bool:
        return self.context != NESTED_TOP


class Tracer:
    """Engine-attachable recorder implementing the tracer protocol.

    The likelihood engine calls :meth:`record_newview`,
    :meth:`record_evaluate` and :meth:`record_makenewz`; the tracer also
    tracks the *enclosing* top-level operation so the executor can tell
    which ``newview`` calls would be nested inside an offloaded
    ``makenewz``/``evaluate`` (and therefore free of PPE<->SPE
    communication once all three functions live on the SPE — paper
    section 5.2.7).
    """

    def __init__(self, keep_events: bool = False):
        self.keep_events = keep_events
        self.events: List[KernelEvent] = []
        self._context = NESTED_TOP
        # Aggregates, updated incrementally (traces can be millions of
        # events; storing them all is opt-in).
        self.newview_count = 0
        self.newview_nested_count = 0
        self.newview_case_counts: Counter = Counter()
        self.newview_patterncats = 0.0  # sum of n_patterns * n_cats
        self.newview_scaled_patterns = 0
        self.makenewz_count = 0
        self.makenewz_iterations = 0
        self.makenewz_patterncats = 0.0  # sum over iterations
        self.evaluate_count = 0
        self.evaluate_patterncats = 0.0
        self.spr_batch_count = 0
        self.spr_batch_candidates = 0
        self.spr_batch_patterncats = 0.0  # sum over candidates x iterations
        self.gradient_count = 0
        self.gradient_branches = 0
        self.gradient_patterncats = 0.0  # sum over branches
        self.gradient_newviews = 0  # directional newview fills inside sweeps
        self.task_boundaries: List[int] = []  # cumulative newview counts
        #: callables returning engine perf-counter dicts (cache/arena/
        #: batching efficiency); registered by the likelihood engine.
        self.counter_sources: List = []

    # -- context management (called by the engine wrapper) --------------------

    def push_context(self, name: str) -> str:
        previous = self._context
        self._context = name
        return previous

    def pop_context(self, previous: str) -> None:
        self._context = previous

    def mark_task_boundary(self) -> None:
        """Note the end of one task (bootstrap/inference)."""
        self.task_boundaries.append(self.newview_count)

    # -- recording protocol -------------------------------------------------------

    def record_newview(self, case: str, n_patterns: int, n_cats: int,
                       scaled: int) -> None:
        self.newview_count += 1
        self.newview_case_counts[case] += 1
        self.newview_patterncats += n_patterns * n_cats
        self.newview_scaled_patterns += scaled
        if self._context != NESTED_TOP:
            self.newview_nested_count += 1
        if self.keep_events:
            self.events.append(
                KernelEvent("newview", n_patterns, n_cats, case=case,
                            scaled=scaled, context=self._context)
            )

    def record_evaluate(self, n_patterns: int, n_cats: int) -> None:
        self.evaluate_count += 1
        self.evaluate_patterncats += n_patterns * n_cats
        if self.keep_events:
            self.events.append(
                KernelEvent("evaluate", n_patterns, n_cats,
                            context=self._context)
            )

    def record_makenewz(self, n_patterns: int, n_cats: int,
                        iterations: int) -> None:
        self.makenewz_count += 1
        self.makenewz_iterations += iterations
        self.makenewz_patterncats += n_patterns * n_cats * max(iterations, 1)
        if self.keep_events:
            self.events.append(
                KernelEvent("makenewz", n_patterns, n_cats,
                            iterations=iterations, context=self._context)
            )

    def record_spr_batch(self, k: int, n_patterns: int, n_cats: int,
                         iterations: int) -> None:
        """One fused multi-candidate SPR scoring call (k candidates)."""
        self.spr_batch_count += 1
        self.spr_batch_candidates += k
        self.spr_batch_patterncats += (
            k * n_patterns * n_cats * max(iterations, 1)
        )
        if self.keep_events:
            self.events.append(
                KernelEvent("spr_batch", n_patterns, n_cats,
                            iterations=iterations, context=self._context,
                            batch=k)
            )

    def record_gradient(self, k: int, n_patterns: int, n_cats: int,
                        newviews: int) -> None:
        """One full-tree gradient sweep (k branches in one contraction)."""
        self.gradient_count += 1
        self.gradient_branches += k
        self.gradient_patterncats += k * n_patterns * n_cats
        self.gradient_newviews += newviews
        if self.keep_events:
            self.events.append(
                KernelEvent("gradient", n_patterns, n_cats,
                            context=self._context, batch=k)
            )

    # -- engine perf counters -------------------------------------------------

    def add_counter_source(self, source) -> None:
        """Register a zero-arg callable returning a perf-counter dict."""
        self.counter_sources.append(source)

    def perf_counters(self) -> Dict[str, int]:
        """Merged engine counters (summed across registered sources)."""
        merged: Dict[str, int] = {}
        for source in self.counter_sources:
            for key, value in source().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def summary(self) -> "TraceSummary":
        return TraceSummary.from_tracer(self)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate workload of one task (one tree search).

    All quantities are *per task*; the executor multiplies by the number
    of bootstraps/inferences in an experiment.
    """

    newview_count: int
    newview_nested_count: int
    newview_patterncats: float
    newview_case_counts: Dict[str, int]
    newview_scaled_patterns: int
    makenewz_count: int
    makenewz_iterations: int
    makenewz_patterncats: float
    evaluate_count: int
    evaluate_patterncats: float
    # Batched SPR scoring events (0 everywhere when the serial search
    # path is used, e.g. in the paper-faithful harness traces).
    spr_batch_count: int = 0
    spr_batch_candidates: int = 0
    spr_batch_patterncats: float = 0.0
    # Full-tree gradient sweeps (0 everywhere unless gradient smoothing
    # is switched on).
    gradient_count: int = 0
    gradient_branches: int = 0
    gradient_patterncats: float = 0.0
    gradient_newviews: int = 0

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceSummary":
        return cls(
            newview_count=tracer.newview_count,
            newview_nested_count=tracer.newview_nested_count,
            newview_patterncats=tracer.newview_patterncats,
            newview_case_counts=dict(tracer.newview_case_counts),
            newview_scaled_patterns=tracer.newview_scaled_patterns,
            makenewz_count=tracer.makenewz_count,
            makenewz_iterations=tracer.makenewz_iterations,
            makenewz_patterncats=tracer.makenewz_patterncats,
            evaluate_count=tracer.evaluate_count,
            evaluate_patterncats=tracer.evaluate_patterncats,
            spr_batch_count=tracer.spr_batch_count,
            spr_batch_candidates=tracer.spr_batch_candidates,
            spr_batch_patterncats=tracer.spr_batch_patterncats,
            gradient_count=tracer.gradient_count,
            gradient_branches=tracer.gradient_branches,
            gradient_patterncats=tracer.gradient_patterncats,
            gradient_newviews=tracer.gradient_newviews,
        )

    # -- derived quantities --------------------------------------------------

    @property
    def newview_toplevel_count(self) -> int:
        return self.newview_count - self.newview_nested_count

    @property
    def mean_newview_patterncats(self) -> float:
        if self.newview_count == 0:
            return 0.0
        return self.newview_patterncats / self.newview_count

    @property
    def mean_makenewz_iterations(self) -> float:
        if self.makenewz_count == 0:
            return 0.0
        return self.makenewz_iterations / self.makenewz_count

    def offload_count(self, offload_all: bool) -> int:
        """PPE->SPE dispatches per task under an offloading regime.

        With only ``newview`` offloaded, every invocation is a round
        trip.  With all three functions resident on the SPE, nested
        ``newview`` calls stay on-chip and only top-level operations
        cross the PPE/SPE boundary (paper section 5.2.7).
        """
        if not offload_all:
            return self.newview_count
        return (
            self.newview_toplevel_count
            + self.makenewz_count
            + self.evaluate_count
        )

    def tip_case_fraction(self) -> float:
        """Fraction of newview calls hitting a specialized tip case."""
        if self.newview_count == 0:
            return 0.0
        inner = self.newview_case_counts.get(NewviewCase.INNER_INNER, 0)
        return 1.0 - inner / self.newview_count

    def paper_equivalent_flops(self, vectorized: bool = False) -> float:
        """Total DP FLOPs under the paper's per-iteration counts.

        Uses 44 (scalar) / 22 (SIMD) FLOPs per large-loop iteration and
        36 / 24 per small-loop iteration (paper section 5.2.5); the
        large-loop trip count is ``n_patterns`` per category.
        """
        large = (
            _k.FLOPS_LARGE_LOOP_VECTOR if vectorized else _k.FLOPS_LARGE_LOOP_SCALAR
        )
        small = (
            _k.FLOPS_SMALL_LOOP_VECTOR if vectorized else _k.FLOPS_SMALL_LOOP_SCALAR
        )
        total_patterncats = (
            self.newview_patterncats
            + self.makenewz_patterncats
            + self.evaluate_patterncats
            + self.spr_batch_patterncats
            + self.gradient_patterncats
        )
        # Small loop runs once per kernel call per category; approximate
        # categories from the patterncats ratio.  Each batched SPR
        # candidate (and each branch of a fused gradient sweep) builds
        # its own transition stack, so it counts like one call here.
        calls = (
            self.newview_count
            + self.makenewz_count
            + self.evaluate_count
            + self.spr_batch_candidates
            + self.gradient_branches
        )
        return total_patterncats * large + calls * 4 * small

    def scale(self, factor: float) -> "TraceSummary":
        """A summary for a workload *factor* times this one (the paper's
        full-effort search vs. the reproduction's reduced-effort one)."""
        return TraceSummary(
            newview_count=int(round(self.newview_count * factor)),
            newview_nested_count=int(round(self.newview_nested_count * factor)),
            newview_patterncats=self.newview_patterncats * factor,
            newview_case_counts={
                k: int(round(v * factor))
                for k, v in self.newview_case_counts.items()
            },
            newview_scaled_patterns=int(round(self.newview_scaled_patterns * factor)),
            makenewz_count=int(round(self.makenewz_count * factor)),
            makenewz_iterations=int(round(self.makenewz_iterations * factor)),
            makenewz_patterncats=self.makenewz_patterncats * factor,
            evaluate_count=int(round(self.evaluate_count * factor)),
            evaluate_patterncats=self.evaluate_patterncats * factor,
            spr_batch_count=int(round(self.spr_batch_count * factor)),
            spr_batch_candidates=int(round(self.spr_batch_candidates * factor)),
            spr_batch_patterncats=self.spr_batch_patterncats * factor,
            gradient_count=int(round(self.gradient_count * factor)),
            gradient_branches=int(round(self.gradient_branches * factor)),
            gradient_patterncats=self.gradient_patterncats * factor,
            gradient_newviews=int(round(self.gradient_newviews * factor)),
        )
