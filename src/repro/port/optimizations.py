"""The seven Cell-specific optimizations as composable configuration.

Paper section 7 enumerates them:

  I.    offload the ML kernels onto the SPEs
  II.   replace math-library ``exp()``/``log()`` with the Cell SDK
        numerical implementations
  III.  cast the hard-to-predict scaling conditional to integer
        comparisons and vectorize it
  IV.   double-buffer DMA transfers to overlap communication with
        computation
  V.    vectorize (SIMD) the floating-point loops
  VI.   replace mailbox signalling with direct memory-to-memory
        communication
  VII.  offload all three functions (``newview``, ``makenewz``,
        ``evaluate``) in one resident SPE module

plus the scheduling models of section 5.3 (EDTLP / LLP / MGPS).  Each
table of the evaluation is a cumulative stage of this pipeline; the
:func:`stage` presets reproduce that staging, and the ablation benches
toggle flags independently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["OptimizationConfig", "STAGES", "stage"]


@dataclass(frozen=True)
class OptimizationConfig:
    """Which Cell optimizations are active."""

    offload_newview: bool = False
    sdk_exp: bool = False
    int_conditionals: bool = False
    double_buffering: bool = False
    vectorize: bool = False
    direct_comm: bool = False
    offload_all: bool = False

    def __post_init__(self) -> None:
        offloaded = self.offload_newview or self.offload_all
        if not offloaded:
            for flag in (
                "sdk_exp",
                "int_conditionals",
                "double_buffering",
                "vectorize",
                "direct_comm",
            ):
                if getattr(self, flag):
                    raise ValueError(
                        f"{flag} is an SPE-code optimization; it requires "
                        "offload_newview or offload_all"
                    )

    @property
    def any_offload(self) -> bool:
        return self.offload_newview or self.offload_all

    def describe(self) -> str:
        if not self.any_offload:
            return "PPE-only baseline"
        parts = ["offload-all" if self.offload_all else "offload-newview"]
        for flag, label in (
            ("sdk_exp", "sdk-exp"),
            ("int_conditionals", "int-cond"),
            ("double_buffering", "double-buf"),
            ("vectorize", "simd"),
            ("direct_comm", "direct-comm"),
        ):
            if getattr(self, flag):
                parts.append(label)
        return "+".join(parts)

    def with_flags(self, **flags) -> "OptimizationConfig":
        return replace(self, **flags)


def _build_stages() -> Dict[str, OptimizationConfig]:
    """The paper's cumulative staging, one entry per table."""
    ppe_only = OptimizationConfig()
    t1b = OptimizationConfig(offload_newview=True)
    t2 = t1b.with_flags(sdk_exp=True)
    t3 = t2.with_flags(int_conditionals=True)
    t4 = t3.with_flags(double_buffering=True)
    t5 = t4.with_flags(vectorize=True)
    t6 = t5.with_flags(direct_comm=True)
    t7 = t6.with_flags(offload_all=True)
    return {
        "table1a": ppe_only,
        "table1b": t1b,
        "table2": t2,
        "table3": t3,
        "table4": t4,
        "table5": t5,
        "table6": t6,
        "table7": t7,
        # Table 8 uses the table-7 code plus the MGPS scheduler; the
        # scheduler choice lives in repro.sched, not in these flags.
        "table8": t7,
    }


#: Cumulative optimization stages keyed by the paper table they produce.
STAGES: Dict[str, OptimizationConfig] = _build_stages()


def stage(name: str) -> OptimizationConfig:
    """Look up a cumulative stage by table name (e.g. ``"table5"``)."""
    try:
        return STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; choose from {sorted(STAGES)}"
        ) from None
