"""The port executor: trace -> cost model -> schedulers -> seconds.

This is the top-level entry point of the platform study.  Given a
workload trace from a real search (:mod:`repro.port.trace`), it builds
the calibrated cost model, prices any optimization stage / worker /
bootstrap combination analytically, and can also drive the
discrete-event schedulers (:mod:`repro.sched`) for the contention-
sensitive Table 8 / Figure 3 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cell.timing import CellTiming, DEFAULT_TIMING
from ..platforms import power5_platform, xeon_platform
from ..sched import (
    CellTask,
    EDTLPResult,
    LLPResult,
    MGPSResult,
    StaticResult,
    make_tasks,
    simulate_edtlp,
    simulate_llp,
    simulate_mgps,
    simulate_static,
)
from . import paperdata as P
from .optimizations import stage
from .profilemodel import CellCostModel
from .trace import TraceSummary

__all__ = ["PortExecutor", "Figure3Series"]


@dataclass(frozen=True)
class Figure3Series:
    """One platform's execution-time series over the bootstrap sweep."""

    platform: str
    bootstraps: Tuple[int, ...]
    seconds: Tuple[float, ...]


class PortExecutor:
    """Prices traced workloads on Cell (and the comparison platforms)."""

    def __init__(self, summary: TraceSummary,
                 timing: CellTiming = DEFAULT_TIMING,
                 devs_batches_per_task: int = 48):
        self.timing = timing
        self.model = CellCostModel(summary, timing)
        self.devs_batches_per_task = devs_batches_per_task

    # -- analytic table reproduction -----------------------------------------

    def table(self, stage_name: str) -> Dict[Tuple[int, int], float]:
        """All four cells of one staged table (workers, bootstraps)."""
        return {
            key: self.model.stage_total_s(stage_name, *key)
            for key in P.TABLES[stage_name]
        }

    def table8(self) -> Dict[int, float]:
        """Table 8 (MGPS) over the paper's bootstrap counts."""
        return {b: self.model.mgps_total_s(b) for b in P.TABLE8}

    def ablation(self, base: str = "table7") -> Dict[str, float]:
        """Single-flag ablations: each optimization turned off alone.

        Quantifies every optimization's standalone contribution at the
        fully optimized endpoint (DESIGN.md's ablation bench), on the
        (1 worker, 1 bootstrap) configuration.
        """
        full = stage(base)
        out = {"full": self.model.run_total_s(full, 1, 1)}
        for flag in (
            "sdk_exp",
            "int_conditionals",
            "double_buffering",
            "vectorize",
            "direct_comm",
            "offload_all",
        ):
            config = full.with_flags(**{flag: False})
            out[f"without_{flag}"] = self.model.run_total_s(config, 1, 1)
        return out

    # -- discrete-event scheduler runs ------------------------------------------

    def _stage7_tasks(self, count: int, for_edtlp: bool) -> List[CellTask]:
        cost = self.model.task_cost(stage("table7"), workers=2)
        # Under EDTLP the per-offload PPE service time already covers
        # signalling, so comm is not double-charged.
        comm = 0.0 if for_edtlp else cost.comm_s
        return make_tasks(
            count,
            spe_s=cost.spe_s,
            ppe_s=self.model.ppe_other_s,
            comm_s=comm,
            offloads=cost.offloads,
            n_batches=self.devs_batches_per_task,
        )

    def static_devs(self, stage_name: str, workers: int,
                    bootstraps: int) -> StaticResult:
        """Discrete-event run of a Tables-1-7 static configuration.

        Cross-checks the closed-form :meth:`CellCostModel.stage_total_s`
        by actually interleaving PPE/SPE quanta on the simulator.
        """
        config = stage(stage_name)
        if not config.any_offload:
            raise ValueError(
                "the PPE-only stage has no offloads to simulate; use the "
                "analytic form"
            )
        cost = self.model.task_cost(config, workers=1)
        smt = (
            self.timing.ppe_smt_slowdown if workers >= 2 else 1.0
        )
        # simulate_static applies SMT through the shared PPE, so hand it
        # the uncontended per-offload cost.
        comm = self.model.comm_per_offload(config, workers) / smt
        tasks = make_tasks(
            bootstraps,
            spe_s=cost.spe_s,
            ppe_s=cost.ppe_s,
            comm_s=0.0,
            offloads=cost.offloads,
            n_batches=self.devs_batches_per_task,
        )
        return simulate_static(tasks, comm_per_offload_s=comm,
                               n_workers=workers, timing=self.timing)

    def edtlp_devs(self, bootstraps: int,
                   n_workers: Optional[int] = None) -> EDTLPResult:
        """Discrete-event EDTLP run (queueing and SMT emerge)."""
        tasks = self._stage7_tasks(bootstraps, for_edtlp=True)
        return simulate_edtlp(
            tasks,
            ppe_service_s=self.model.edtlp_ppe_service_s,
            n_workers=n_workers,
            timing=self.timing,
        )

    def llp_devs(self, bootstraps: int, spes_per_task: int) -> LLPResult:
        """Discrete-event LLP run."""
        tasks = self._stage7_tasks(bootstraps, for_edtlp=False)
        return simulate_llp(
            tasks,
            parallel_fraction=self.model.llp_parallel_fraction,
            overhead_eta=self.model.llp_overhead_eta,
            spes_per_task=spes_per_task,
            timing=self.timing,
        )

    def mgps_devs(self, bootstraps: int) -> MGPSResult:
        """Discrete-event MGPS run (EDTLP batches + LLP tail)."""
        edtlp_tasks = self._stage7_tasks(bootstraps, for_edtlp=True)
        return simulate_mgps(
            edtlp_tasks,
            ppe_service_s=self.model.edtlp_ppe_service_s,
            parallel_fraction=self.model.llp_parallel_fraction,
            overhead_eta=self.model.llp_overhead_eta,
            timing=self.timing,
        )

    # -- extensions --------------------------------------------------------------

    def cat_projection(self, cat_summary: TraceSummary) -> Dict[str, float]:
        """Per-task Cell time under CAT vs Gamma rate heterogeneity.

        The CAT trace comes from a *real* CAT-mode search; its kernel
        shape (patterns x 1 category instead of x 4) scales the
        pattern-proportional components of the stage-7 kernel, while
        the per-call residual and per-offload communication keep their
        Gamma-derived values.  Returns per-task seconds and the speedup.
        """
        model = self.model
        gamma = model.canonical
        cat = cat_summary.scale(P.NEWVIEW_CALLS / cat_summary.newview_count)
        ppc_ratio = (
            cat.mean_newview_patterncats / gamma.mean_newview_patterncats
        )
        cats_ratio = 1.0 / 4.0  # one category per site vs four integrated
        config = stage("table7")
        loops = model.nv_loops_vector_s * ppc_ratio
        exp_t = model.nv_exp_sdk_s * cats_ratio
        cond = model.nv_cond_int_s * ppc_ratio
        kernel_cat = loops + exp_t + cond + model.nv_residual_s
        kernel_gamma = model.newview_kernel_s(config)
        scale = kernel_cat / kernel_gamma
        gamma_cost = model.task_cost(config, workers=1)
        cat_offloads = cat.offload_count(offload_all=True)
        cat_task = (
            gamma_cost.ppe_s
            + gamma_cost.spe_s * scale
            + cat_offloads * model.comm_per_offload(config, workers=1)
        )
        return {
            "gamma_task_s": gamma_cost.total_s,
            "cat_task_s": cat_task,
            "speedup": gamma_cost.total_s / cat_task,
            "patterncat_ratio": ppc_ratio,
        }

    def alignment_length_projection(
        self, pattern_counts: Sequence[int]
    ) -> Dict[int, float]:
        """Per-task stage-7 time vs distinct-pattern count.

        The paper (section 5.2.4): "the major calculation loop ... can
        execute up to 50,000 iterations.  The number of iterations is
        directly related to the alignment length."  The
        pattern-proportional kernel components (loops, conditional, DMA
        wait) scale with the pattern count; the per-call residual and
        signalling do not — so task time is affine in pattern count
        with a fixed floor.  Keyed by pattern count, relative to the
        canonical ~228-pattern 42_SC task.
        """
        model = self.model
        config = stage("table7")
        reference = P.LARGE_LOOP_ITERATIONS
        base_cost = model.task_cost(config, workers=1)
        out = {}
        for count in pattern_counts:
            if count < 1:
                raise ValueError("pattern counts must be positive")
            ratio = count / reference
            kernel = (
                model.nv_loops_vector_s * ratio
                + model.nv_exp_sdk_s
                + model.nv_cond_int_s * ratio
                + model.nv_residual_s
            )
            scale = kernel / model.newview_kernel_s(config)
            out[count] = (
                base_cost.ppe_s + base_cost.spe_s * scale + base_cost.comm_s
            )
        return out

    def single_precision_projection(
        self, bootstraps: Sequence[int] = P.FIGURE3_BOOTSTRAPS
    ) -> Dict[str, Tuple[float, ...]]:
        """Figure 3 with single-precision SPE arithmetic (section 6).

        Conventional processors gain little from SP on this code (the
        same scalar pipelines serve both widths; a modest cache-density
        benefit is credited), while the SPE arithmetic speeds up by the
        issue-rate/SIMD factor — so the Cell margin widens, as the
        paper asserts.
        """
        bootstraps = tuple(bootstraps)
        comparator_sp_gain = 1.15  # cache-density benefit only
        cell_dp = tuple(self.model.mgps_total_s(b) for b in bootstraps)
        cell_sp = tuple(self.model.mgps_total_sp_s(b) for b in bootstraps)
        p5 = power5_platform()
        return {
            "bootstraps": bootstraps,
            "cell_dp": cell_dp,
            "cell_sp": cell_sp,
            "power5_sp": tuple(
                v / comparator_sp_gain for v in p5.sweep(bootstraps)
            ),
        }

    def dual_cell_projection(
        self, bootstraps: Sequence[int] = P.FIGURE3_BOOTSTRAPS
    ) -> Dict[int, Tuple[float, float]]:
        """(one chip, two chips) MGPS makespans per bootstrap count."""
        return {
            b: (self.model.mgps_total_s(b), self.model.dual_cell_mgps_s(b))
            for b in bootstraps
        }

    # -- Figure 3 --------------------------------------------------------------

    def figure3(self, bootstraps: Sequence[int] = P.FIGURE3_BOOTSTRAPS
                ) -> List[Figure3Series]:
        """The cross-platform sweep: Cell-MGPS vs Power5 vs 2x Xeon."""
        bootstraps = tuple(bootstraps)
        cell = tuple(self.model.mgps_total_s(b) for b in bootstraps)
        p5 = power5_platform()
        xe = xeon_platform(n_chips=2)
        return [
            Figure3Series("Cell (MGPS)", bootstraps, cell),
            Figure3Series(p5.name, bootstraps, tuple(p5.sweep(bootstraps))),
            Figure3Series(xe.name, bootstraps, tuple(xe.sweep(bootstraps))),
        ]
