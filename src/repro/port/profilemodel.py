"""The calibrated kernel cost model (how seconds are produced).

The reproduction cannot time code on Cell silicon, so execution times
are produced by a component cost model whose constants are **derived
algebraically from the paper's own measurements** and whose structure
follows the mechanisms the paper describes.  The derivation (all
quantities per canonical task — one ``42_SC`` search, 230,500
``newview`` invocations):

Let ``rest`` be the PPE time of the never-offloaded remainder
(makenewz + evaluate + other until table 7), from the gprof shares of
section 5.2 applied to Table 1a's 36.9 s.  Subtracting ``rest`` from
each staged table's (1 worker, 1 bootstrap) cell isolates the offloaded
``newview`` path ``S_k`` at stage ``k``; successive differences then
yield the per-component times:

======================  =============================================
component               derivation
======================  =============================================
``M_dm`` (comm/offload)  2 x direct-signal latency + SPU poll (timing)
``M_mb``                 ``M_dm + (S5 - S6) / N``      [Table 5 vs 6]
``K_k`` (kernel only)    ``S_k - M`` at the stage's comm mechanism
``E_lib``                ``0.50 x K_1``                 [section 5.2.2]
``E_sdk``                ``E_lib - (K_1 - K_2)``        [Table 1b vs 2]
``B_int``                ``0.06 x K_3``                 [section 5.2.3]
``B_float``              ``B_int + (K_2 - K_3)``        [Table 2 vs 3]
``D`` (DMA wait)         ``K_3 - K_4``                  [Table 3 vs 4]
``C_scalar`` (loops)     ``0.694 x K_4``                [section 5.2.5]
``C_vec``                ``C_scalar - (K_4 - K_5)``     [Table 4 vs 5]
``R`` (per-call rest)    ``K_4 - C_scalar - E_sdk - B_int``
======================  =============================================

Two-worker rows expose two further mechanisms the model carries:
the PPE SMT slowdown (1.407, from Table 1a) applied to all
PPE-resident time, and a per-offload *communication contention* cost
per additional worker (~9.8 us mailbox / ~2.3 us direct, the residual
of Tables 1b-6 two-worker rows after SMT) — the effect behind the
paper's remark that direct memory-to-memory communication "scales with
parallelism".

Stage 7 (all three kernels on the SPE) uses the SPE/PPE speed ratio
``sigma = K_5 / newview-PPE-time`` for the migrated kernels plus a
co-residency factor ``phi`` solved from Table 7's 27.7 s — the paper's
stage-7 measurement implies a joint speedup beyond the component sum
(nested calls lose their per-call setup), which ``phi`` absorbs.

The scheduling constants (EDTLP PPE service per offload, LLP overhead
share) are solved from Table 8 in the same spirit; see
:class:`CellCostModel` attributes.

Everything downstream — every other cell of Tables 1-8, all worker /
bootstrap scalings, the MGPS composition, and Figure 3's platform
comparison — is *derived*, and EXPERIMENTS.md reports paper-vs-model
for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cell.timing import CellTiming, DEFAULT_TIMING
from . import paperdata as P
from .optimizations import OptimizationConfig, stage
from .trace import TraceSummary

__all__ = ["CellCostModel", "TaskCost"]


@dataclass(frozen=True)
class TaskCost:
    """Cost breakdown of one task (one bootstrap/inference search)."""

    ppe_s: float  # PPE-resident compute (incl. SMT inflation)
    spe_s: float  # SPE kernel time
    comm_s: float  # PPE<->SPE signalling (incl. contention)
    offloads: int  # PPE->SPE dispatches

    @property
    def total_s(self) -> float:
        return self.ppe_s + self.spe_s + self.comm_s


class CellCostModel:
    """Prices a traced workload on the simulated Cell under any
    optimization configuration and worker count.

    Parameters
    ----------
    summary:
        The per-task workload trace (scaled internally to the paper's
        canonical 230,500 ``newview`` calls so absolute seconds are
        comparable to the paper's tables).
    timing:
        Cell architecture constants.
    """

    def __init__(self, summary: TraceSummary,
                 timing: CellTiming = DEFAULT_TIMING):
        if summary.newview_count <= 0:
            raise ValueError("trace has no newview calls")
        self.timing = timing
        self.canonical = summary.scale(P.NEWVIEW_CALLS / summary.newview_count)
        n = float(P.NEWVIEW_CALLS)

        shares = P.PROFILE_SHARES
        t1a = P.TABLES["table1a"][(1, 1)]
        #: PPE sequential task time (the calibration anchor).
        self.ppe_task_s = t1a
        #: makenewz+evaluate+other on the PPE (resident until table 7).
        self.ppe_rest_s = (
            shares["makenewz"] + shares["evaluate"] + shares["other"]
        ) * t1a
        self.ppe_other_s = shares["other"] * t1a
        self.ppe_mz_ev_s = (shares["makenewz"] + shares["evaluate"]) * t1a
        self.ppe_newview_s = shares["newview"] * t1a

        # --- per-offload communication -------------------------------------
        self.comm_direct_per_offload = (
            2.0 * timing.direct_signal_latency_s + timing.spe_poll_interval_s
        )
        s = {
            k: P.TABLES[k][(1, 1)] - self.ppe_rest_s
            for k in ("table1b", "table2", "table3", "table4", "table5", "table6")
        }
        self.comm_mailbox_per_offload = (
            self.comm_direct_per_offload + (s["table5"] - s["table6"]) / n
        )

        # --- newview kernel components (totals per canonical task) -----------
        mb_total = self.comm_mailbox_per_offload * n
        dm_total = self.comm_direct_per_offload * n
        k1 = s["table1b"] - mb_total
        k2 = s["table2"] - mb_total
        k3 = s["table3"] - mb_total
        k4 = s["table4"] - mb_total
        k5 = s["table5"] - mb_total
        frac = P.SECTION52_FRACTIONS
        self.nv_exp_lib_s = frac["exp_share_of_unoptimized_spe"] * k1
        self.nv_exp_sdk_s = self.nv_exp_lib_s - (k1 - k2)
        self.nv_cond_int_s = frac["conditional_share_after"] * k3
        self.nv_cond_float_s = self.nv_cond_int_s + (k2 - k3)
        self.nv_dma_wait_s = k3 - k4
        self.nv_loops_scalar_s = frac["loops_share_before_simd"] * k4
        self.nv_loops_vector_s = self.nv_loops_scalar_s - (k4 - k5)
        self.nv_residual_s = (
            k4 - self.nv_loops_scalar_s - self.nv_exp_sdk_s - self.nv_cond_int_s
        )
        self._k5 = k5
        for name in (
            "nv_exp_sdk_s",
            "nv_cond_int_s",
            "nv_dma_wait_s",
            "nv_loops_vector_s",
            "nv_residual_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"derived component {name} is non-positive")

        # --- two-worker communication contention ----------------------------
        # Residual per-offload cost per additional worker after SMT, averaged
        # over the mailbox-stage tables (see module docstring).
        smt = timing.ppe_smt_slowdown
        residuals = []
        for key, kernel in (
            ("table1b", k1), ("table2", k2), ("table3", k3),
            ("table4", k4), ("table5", k5),
        ):
            t_2w32 = P.TABLES[key][(2, 32)]
            predicted = 16.0 * (self.ppe_rest_s * smt + kernel + mb_total * smt)
            residuals.append((t_2w32 - predicted) / (32.0 * n))
        self.comm_contention_mailbox = max(sum(residuals) / len(residuals), 0.0)
        t6_2w32 = P.TABLES["table6"][(2, 32)]
        predicted6 = 16.0 * (self.ppe_rest_s * smt + k5 + dm_total * smt)
        self.comm_contention_direct = max(
            (t6_2w32 - predicted6) / (32.0 * n), 0.0
        )

        # --- stage 7: all three kernels on the SPE ---------------------------
        #: SPE/PPE speed ratio for fully optimized kernels.
        self.sigma_spe_over_ppe = k5 / self.ppe_newview_s
        offloads7 = self.canonical.offload_count(offload_all=True)
        comm7 = offloads7 * self.comm_direct_per_offload
        t7 = P.TABLES["table7"][(1, 1)]
        raw7 = k5 + self.sigma_spe_over_ppe * self.ppe_mz_ev_s
        #: Co-residency factor (joint speedup of the single-module port).
        self.stage7_phi = (t7 - self.ppe_other_s - comm7) / raw7
        self._spe7_s = self.stage7_phi * raw7

        # --- LLP loop-parallelization constants (from Table 8, 1 bootstrap) ---
        #: Parallelizable fraction: the vectorized likelihood loops' share.
        self.llp_parallel_fraction = self.nv_loops_vector_s / k5
        t8_1 = P.TABLE8[1]
        target_speedup = self._spe7_s / (t8_1 - self.ppe_other_s - comm7)
        p = self.llp_parallel_fraction
        n_spes = timing.n_spes
        #: Per-SPE overhead share of LLP: speedup(n) =
        #: 1 / ((1-p) + p/n + eta*(n-1)/(n_spes-1)), so eta is the full
        #: overhead share at the maximum split (n = n_spes).
        self.llp_overhead_eta = max(
            1.0 / target_speedup - (1.0 - p) - p / n_spes, 0.0
        )

        # --- EDTLP PPE service time per offload (from Table 8, 32 bootstraps) ---
        # With the PPE saturated by 8 oversubscribed workers, makespan =
        # B * offloads * g_eff / threads; solve g from the 32-bootstrap row.
        t8_32 = P.TABLE8[32]
        self.edtlp_ppe_service_s = (
            t8_32 * timing.ppe_smt_threads / (32.0 * offloads7)
        ) / smt  # store the uncontended value; SMT applies at use

    # ------------------------------------------------------------------
    # newview kernel time under a configuration
    # ------------------------------------------------------------------

    def sp_arithmetic_speedup(self) -> float:
        """SPU single- vs double-precision arithmetic throughput ratio.

        Paper section 6: "the use of single-precision arithmetic would
        widen the margin" — SP is fully pipelined (1 issue/cycle) with
        4-wide SIMD, against DP's 2 ops per 6 cycles at 2-wide SIMD:
        (1 x 4) / (2/6 x 2) = 6.
        """
        t = self.timing
        sp = t.sp_issue_per_cycle * t.sp_simd_width
        dp = (t.dp_ops_per_issue / t.dp_issue_interval_cycles) * t.dp_simd_width
        return sp / dp

    def newview_kernel_s(self, config: OptimizationConfig,
                         single_precision: bool = False) -> float:
        """SPE time of the newview path per canonical task (no comm).

        With ``single_precision=True`` the arithmetic components (loops,
        exp) speed up by :meth:`sp_arithmetic_speedup` and the DMA wait
        halves (half-width data); the integer-compare conditional and
        the per-call residual are unchanged.
        """
        if not config.any_offload:
            raise ValueError("newview_kernel_s requires an offload config")
        loops = self.nv_loops_vector_s if config.vectorize else self.nv_loops_scalar_s
        exp_t = self.nv_exp_sdk_s if config.sdk_exp else self.nv_exp_lib_s
        cond = self.nv_cond_int_s if config.int_conditionals else self.nv_cond_float_s
        dma = 0.0 if config.double_buffering else self.nv_dma_wait_s
        if single_precision:
            speedup = self.sp_arithmetic_speedup()
            loops /= speedup
            exp_t /= speedup
            dma /= 2.0
        return loops + exp_t + cond + dma + self.nv_residual_s

    def comm_per_offload(self, config: OptimizationConfig, workers: int) -> float:
        """Per-offload signalling cost including SMT and contention."""
        smt = self.timing.ppe_smt_slowdown if workers >= 2 else 1.0
        if config.direct_comm:
            base = self.comm_direct_per_offload
            contention = self.comm_contention_direct
        else:
            base = self.comm_mailbox_per_offload
            contention = self.comm_contention_mailbox
        return base * smt + (workers - 1) * contention

    # ------------------------------------------------------------------
    # per-task cost
    # ------------------------------------------------------------------

    def task_cost(self, config: OptimizationConfig, workers: int = 1) -> TaskCost:
        """Cost of one task under *config* with *workers* co-scheduled MPI
        processes on the PPE (1 or 2 — the dedicated-thread regimes of
        Tables 1-7; oversubscription is the schedulers' job)."""
        if workers not in (1, 2):
            raise ValueError("task_cost covers the 1- and 2-worker regimes")
        smt = self.timing.ppe_smt_slowdown if workers >= 2 else 1.0
        if not config.any_offload:
            return TaskCost(ppe_s=self.ppe_task_s * smt, spe_s=0.0,
                            comm_s=0.0, offloads=0)
        if config.offload_all:
            offloads = self.canonical.offload_count(offload_all=True)
            comm = offloads * self.comm_per_offload(config, workers)
            # The migrated makenewz/evaluate scale with the newview
            # kernel's optimization state (they share the loop structure),
            # so the SPE time is phi * nv_kernel * (1 + mz_ev/nv PPE ratio).
            spe = (
                self.stage7_phi
                * self.newview_kernel_s(config)
                * (1.0 + self.ppe_mz_ev_s / self.ppe_newview_s)
            )
            return TaskCost(
                ppe_s=self.ppe_other_s * smt,
                spe_s=spe,
                comm_s=comm,
                offloads=offloads,
            )
        offloads = self.canonical.offload_count(offload_all=False)
        comm = offloads * self.comm_per_offload(config, workers)
        return TaskCost(
            ppe_s=self.ppe_rest_s * smt,
            spe_s=self.newview_kernel_s(config),
            comm_s=comm,
            offloads=offloads,
        )

    def run_total_s(self, config: OptimizationConfig, workers: int,
                    bootstraps: int) -> float:
        """Wall-clock of *bootstraps* tasks over *workers* processes.

        Tables 1-7 regime: each worker owns one PPE hardware thread and
        one SPE; tasks are statically divided (the table rows all divide
        evenly, but stragglers are handled for other inputs).
        """
        if bootstraps < 1 or workers < 1:
            raise ValueError("need at least one bootstrap and one worker")
        per_task = self.task_cost(config, workers=min(workers, 2)).total_s
        tasks_on_busiest = -(-bootstraps // workers)  # ceil
        return tasks_on_busiest * per_task

    def stage_total_s(self, stage_name: str, workers: int,
                      bootstraps: int) -> float:
        """Table lookup-compatible entry: price a named cumulative stage."""
        return self.run_total_s(stage(stage_name), workers, bootstraps)

    # ------------------------------------------------------------------
    # scheduling models (analytic forms; DEVS versions in repro.sched)
    # ------------------------------------------------------------------

    def llp_speedup(self, n_spes: int) -> float:
        """Loop-level-parallelization speedup of the SPE part on n SPEs."""
        if n_spes < 1:
            raise ValueError("need at least one SPE")
        if n_spes == 1:
            return 1.0
        p = self.llp_parallel_fraction
        eta = self.llp_overhead_eta
        denom = (1.0 - p) + p / n_spes + eta * (n_spes - 1) / (
            self.timing.n_spes - 1
        )
        return 1.0 / denom

    def llp_task_s(self, n_spes: int, active_workers: int = 1) -> float:
        """One task with its SPE work loop-parallelized over *n_spes*."""
        config = stage("table7")
        cost = self.task_cost(config, workers=min(active_workers, 2))
        return cost.ppe_s + cost.spe_s / self.llp_speedup(n_spes) + cost.comm_s

    def edtlp_total_s(self, bootstraps: int, n_workers: Optional[int] = None
                      ) -> float:
        """EDTLP makespan: *n_workers* oversubscribed on the PPE.

        The PPE serves every offload (context switch + signalling +
        result handling, ``edtlp_ppe_service_s`` each, SMT-inflated);
        the makespan is the larger of the SPE-side and PPE-side bounds.
        """
        n_workers = n_workers or self.timing.n_spes
        if bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        config = stage("table7")
        cost = self.task_cost(config, workers=2)  # PPE threads always shared
        smt = self.timing.ppe_smt_slowdown
        spe_bound = -(-bootstraps // n_workers) * (cost.spe_s + cost.ppe_s)
        ppe_demand_s = (
            bootstraps * cost.offloads * self.edtlp_ppe_service_s * smt
        )
        ppe_bound = ppe_demand_s / self.timing.ppe_smt_threads
        return max(spe_bound, ppe_bound)

    def mgps_total_s(self, bootstraps: int) -> float:
        """MGPS: EDTLP for full batches of 8 tasks, LLP for the remainder.

        Mirrors the paper's policy (section 5.3): start with eight
        EDTLP workers; when fewer than eight tasks remain, suspend idle
        workers and switch the stragglers to loop-level parallelism
        (up to four concurrent tasks, two SPEs per loop)."""
        if bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        n = self.timing.n_spes
        full_batches, remainder = divmod(bootstraps, n)
        # edtlp_total_s(n) prices exactly one batch of n tasks.
        total = full_batches * self.edtlp_total_s(n, n_workers=n)
        remaining = remainder
        while remaining:
            workers = min(remaining, 4)
            spes_each = max(1, n // workers)
            total += self.llp_task_s(spes_each, active_workers=workers)
            remaining -= workers
        return total

    # ------------------------------------------------------------------
    # extensions beyond the paper's tables
    # ------------------------------------------------------------------

    def mgps_total_sp_s(self, bootstraps: int) -> float:
        """MGPS makespan in the single-precision projection (section 6).

        The SPE kernel shrinks by the SP arithmetic factor on its
        compute components; per-offload communication and PPE-side time
        are unchanged, so the EDTLP regime becomes even more PPE-bound
        (the SPE bound drops, the PPE bound stays) — the SP projection
        mainly pays off in the LLP/low-parallelism regime and when the
        PPE service time is amortized.
        """
        config = stage("table7")
        dp_kernel = self.newview_kernel_s(config)
        sp_kernel = self.newview_kernel_s(config, single_precision=True)
        ratio = sp_kernel / dp_kernel
        n = self.timing.n_spes
        full_batches, remainder = divmod(bootstraps, n)
        cost = self.task_cost(config, workers=2)
        smt = self.timing.ppe_smt_slowdown
        # EDTLP batch: SPE bound shrinks, PPE bound unchanged.
        spe_bound = cost.spe_s * ratio + cost.ppe_s
        ppe_bound = (
            n * cost.offloads * self.edtlp_ppe_service_s * smt
            / self.timing.ppe_smt_threads
        )
        total = full_batches * max(spe_bound, ppe_bound)
        remaining = remainder
        while remaining:
            workers = min(remaining, 4)
            spes_each = max(1, n // workers)
            c1 = self.task_cost(config, workers=min(workers, 2))
            total += (
                c1.ppe_s
                + c1.spe_s * ratio / self.llp_speedup(spes_each)
                + c1.comm_s
            )
            remaining -= workers
        return total

    def dual_cell_mgps_s(self, bootstraps: int) -> float:
        """Projection onto both chips of the dual-Cell blade.

        The paper uses one processor of the BSC blade; with two, each
        chip (own PPE, own 8 SPEs, own EIB) runs MGPS over half the
        tasks independently — the makespan is the busier chip's.
        """
        if bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        busier = -(-bootstraps // 2)
        return self.mgps_total_s(busier)

    def overlay_penalty_s(self, module_bytes: int,
                          swaps_per_call: float = 2.0,
                          resident_bytes: int = 24 * 1024) -> float:
        """Per-task cost of code overlays for an oversized SPE module.

        The paper avoided overlays by keeping the three functions at
        117 KB (section 5.2.4: "recursive function calls in general
        necessitate the use of manually managed code overlays").  This
        prices the alternative, with two cost channels:

        * **swap traffic** — every kernel invocation crossing an
          overlay boundary DMAs the overflowing code segment in (and
          the displaced one out): ``swaps_per_call`` segment transfers
          per ``newview``-class call;
        * **lost double buffering** — code pressure evicts the 2 KB
          DMA staging buffers, so the strip-mined likelihood-vector
          transfers become synchronous again, re-paying the Table 4
          DMA-wait component.

        Returns added seconds per canonical task (0 when the module
        fits next to the stack and buffers).
        """
        if module_bytes <= 0:
            raise ValueError("module size must be positive")
        available = self.timing.local_store_bytes - resident_bytes
        if module_bytes <= available:
            return 0.0
        overflow = module_bytes - available
        n_chunks = -(-overflow // self.timing.dma_max_transfer_bytes)
        per_swap = (
            n_chunks * self.timing.dma_latency_s
            + overflow / self.timing.eib_bandwidth_bytes_per_s
        )
        calls = self.canonical.newview_count
        swap_cost = calls * swaps_per_call * per_swap
        return swap_cost + self.nv_dma_wait_s

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def paper_comparison(self) -> Dict[str, Dict[Tuple[int, int], Tuple[float, float]]]:
        """(paper, model) value pairs for every cell of Tables 1-7."""
        out: Dict[str, Dict[Tuple[int, int], Tuple[float, float]]] = {}
        for table, cells in P.TABLES.items():
            out[table] = {
                key: (paper_value, self.stage_total_s(table, *key))
                for key, paper_value in cells.items()
            }
        return out

    def table8_comparison(self) -> Dict[int, Tuple[float, float]]:
        """(paper, model) for each Table 8 bootstrap count."""
        return {
            b: (paper_value, self.mgps_total_s(b))
            for b, paper_value in P.TABLE8.items()
        }
