"""The RAxML-Cell port: optimizations, tracing, cost model, executor.

This package is the paper's contribution layer: the seven Cell-specific
optimizations as configuration (:mod:`~repro.port.optimizations`),
instrumentation of real searches (:mod:`~repro.port.trace`), the
calibrated component cost model (:mod:`~repro.port.profilemodel`, with
the full derivation in its module docstring), the paper's reported
numbers (:mod:`~repro.port.paperdata`), and the executor that ties them
to the schedulers (:mod:`~repro.port.executor`).
"""

from . import paperdata
from .executor import Figure3Series, PortExecutor
from .optimizations import STAGES, OptimizationConfig, stage
from .profilemodel import CellCostModel, TaskCost
from .trace import NESTED_TOP, KernelEvent, Tracer, TraceSummary

__all__ = [
    "paperdata",
    "Figure3Series",
    "PortExecutor",
    "STAGES",
    "OptimizationConfig",
    "stage",
    "CellCostModel",
    "TaskCost",
    "NESTED_TOP",
    "KernelEvent",
    "Tracer",
    "TraceSummary",
]
