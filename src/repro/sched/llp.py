"""LLP: loop-level parallelization of offloaded kernels across SPEs.

The second programming model of paper section 5.3: when task-level
parallelism cannot fill eight SPEs (fewer than eight outstanding
bootstraps), the likelihood loops *inside* each offloaded function are
distributed across several SPEs, OpenMP-style.  This exposes a third
level of parallelism below tasks and SIMD vectors.

Per offload quantum, the parallelizable loop share ``p`` (the
vectorized likelihood loops, ~63 % of SPE kernel time in the calibrated
model) is split over ``k`` SPEs; the serial remainder and a
split/merge overhead (``eta`` x full-split share, calibrated from
Table 8's one-bootstrap row) stay on the owning SPE.  Up to four
concurrent tasks can each use a disjoint SPE group (the paper uses two
SPEs per loop in that regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Sequence

from ..cell.blade import CellBlade
from ..cell.spe import SPE, KernelInvocation
from ..cell.timing import CellTiming, DEFAULT_TIMING
from .taskmodel import CellTask

__all__ = ["LLPResult", "simulate_llp"]


@dataclass(frozen=True)
class LLPResult:
    """Outcome of one LLP simulation."""

    makespan_s: float
    n_tasks: int
    spes_per_task: int
    spe_utilizations: List[float]
    #: the simulated chip (for timeline rendering); excluded from eq.
    chip: object = field(default=None, compare=False, repr=False)


def simulate_llp(
    tasks: Sequence[CellTask],
    parallel_fraction: float,
    overhead_eta: float,
    spes_per_task: int,
    timing: CellTiming = DEFAULT_TIMING,
) -> LLPResult:
    """Simulate concurrent tasks, each loop-parallelized over an SPE group.

    At most ``n_spes // spes_per_task`` tasks run concurrently (and the
    paper caps concurrent LLP tasks at four); remaining tasks queue.
    """
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel fraction must be in [0, 1]")
    if spes_per_task < 1 or spes_per_task > timing.n_spes:
        raise ValueError("spes_per_task out of range")
    max_concurrent = min(timing.n_spes // spes_per_task, 4)
    if max_concurrent < 1:
        raise ValueError("SPE group does not fit on the chip")

    blade = CellBlade(n_chips=1, timing=timing)
    chip = blade.chip
    chip.load_all_spe_threads()
    slots = blade.sim.store(name="llp-slots")
    for g in range(max_concurrent):
        slots.try_put(g)

    from ..cell.devsim import Get, Put  # local import to avoid cycle noise

    def run_task(task: CellTask) -> Generator:
        group = yield Get(slots)
        spes = chip.spes[group * spes_per_task:(group + 1) * spes_per_task]
        owner = spes[0]
        k = len(spes)
        overhead_share = overhead_eta * (k - 1) / max(timing.n_spes - 1, 1)
        for _ in range(task.n_batches):
            # PPE-side glue for this quantum (dispatch + signalling).
            yield from chip.ppe.compute(task.ppe_batch_s)
            chunk = task.spe_batch_s
            serial = (1.0 - parallel_fraction) * chunk + overhead_share * chunk
            split = parallel_fraction * chunk / k
            # Fan the loop slice out to every SPE in the group, then join.
            done = []
            for spe in spes:
                work = split + (serial if spe is owner else 0.0)
                proc = blade.sim.spawn(
                    spe.execute(KernelInvocation("llp-slice", compute_s=work)),
                    name=f"llp-slice-spe{spe.index}",
                )
                done.append(proc)
            for proc in done:
                yield proc  # wait for completion
        yield Put(slots, group)

    for task in tasks:
        blade.sim.spawn(run_task(task), name=f"llp-task{task.task_id}")
    makespan = blade.sim.run()
    return LLPResult(
        makespan_s=makespan,
        n_tasks=len(tasks),
        spes_per_task=spes_per_task,
        spe_utilizations=[s.utilization(makespan) for s in chip.spes],
        chip=chip,
    )
