"""Simulated MPI master-worker runtime.

RAxML's MPI layer (paper section 3.1) is a master handing independent
tree searches (bootstraps / multiple inferences) to worker ranks.  This
module reproduces that layer inside the discrete-event simulator: a
:class:`SimMPI` communicator with rank mailboxes and a
:class:`MasterWorker` driver that distributes :class:`CellTask` items
on demand.  The API naming (``send``/``recv``/``isend``) follows mpi4py
conventions so the scheduling code reads like the MPI programs it
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..cell.devsim import Get, Put, Simulator, Store, Timeout
from .taskmodel import CellTask

__all__ = ["SimMPI", "MasterWorker", "WORK_TAG", "DONE_TAG", "STOP_TAG"]

WORK_TAG = 1
DONE_TAG = 2
STOP_TAG = 3

#: Latency of one intra-node MPI message (shared-memory transport).
MPI_MESSAGE_LATENCY_S = 2e-6


@dataclass(frozen=True)
class _Message:
    source: int
    tag: int
    payload: Any


class SimMPI:
    """An in-process message-passing world of ``size`` ranks."""

    def __init__(self, sim: Simulator, size: int,
                 message_latency_s: float = MPI_MESSAGE_LATENCY_S):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.sim = sim
        self.size = size
        self.message_latency_s = message_latency_s
        self._inboxes: List[Store] = [
            sim.store(name=f"mpi-rank{r}") for r in range(size)
        ]
        self.messages_sent = 0

    def send(self, dest: int, tag: int, payload: Any = None) -> Generator:
        """Process-generator: blocking send (buffered, latency-charged)."""
        self._check_rank(dest)
        yield Timeout(self.message_latency_s)
        yield Put(self._inboxes[dest], _Message(-1, tag, payload))
        self.messages_sent += 1

    def send_from(self, source: int, dest: int, tag: int,
                  payload: Any = None) -> Generator:
        """Like :meth:`send` but records the source rank."""
        self._check_rank(dest)
        yield Timeout(self.message_latency_s)
        yield Put(self._inboxes[dest], _Message(source, tag, payload))
        self.messages_sent += 1

    def recv(self, rank: int) -> Generator:
        """Process-generator: blocking receive; returns a message."""
        self._check_rank(rank)
        message = yield Get(self._inboxes[rank])
        return message

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")


class MasterWorker:
    """The paper's master-worker task distribution over :class:`SimMPI`.

    Rank 0 is the master; ranks 1..n are workers.  Each worker requests
    work, receives a task, runs it through the caller-supplied
    ``execute(worker_index, task)`` process-generator, reports
    completion, and repeats until the master sends STOP.
    """

    def __init__(self, sim: Simulator, tasks: Sequence[CellTask],
                 n_workers: int,
                 execute: Callable[[int, CellTask], Generator]):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.sim = sim
        self.mpi = SimMPI(sim, n_workers + 1)
        self.tasks = list(tasks)
        self.n_workers = n_workers
        self.execute = execute
        self.completed: List[int] = []
        self.finished_at: Optional[float] = None

    def start(self) -> None:
        self.sim.spawn(self._master(), name="mpi-master")
        for w in range(1, self.n_workers + 1):
            self.sim.spawn(self._worker(w), name=f"mpi-worker{w}")

    def run(self) -> float:
        """Drive the simulation to completion; returns the makespan."""
        self.start()
        self.sim.run()
        if self.finished_at is None:
            raise RuntimeError("master never finished — deadlock?")
        return self.finished_at

    def _master(self) -> Generator:
        pending = list(self.tasks)
        stopped = 0
        while stopped < self.n_workers:
            message = yield from self.mpi.recv(0)
            if message.tag == DONE_TAG and message.payload is not None:
                self.completed.append(message.payload)
            if pending:
                task = pending.pop(0)
                yield from self.mpi.send_from(0, message.source, WORK_TAG, task)
            else:
                yield from self.mpi.send_from(0, message.source, STOP_TAG)
                stopped += 1
        self.finished_at = self.sim.now

    def _worker(self, rank: int) -> Generator:
        yield from self.mpi.send_from(rank, 0, DONE_TAG, None)  # ready
        while True:
            message = yield from self.mpi.recv(rank)
            if message.tag == STOP_TAG:
                return
            task: CellTask = message.payload
            yield from self.execute(rank - 1, task)
            yield from self.mpi.send_from(rank, 0, DONE_TAG, task.task_id)
