"""EDTLP: event-driven task-level parallelization (paper section 5.3).

The PPE has only two hardware threads, but eight SPEs need feeding.
EDTLP oversubscribes the PPE with up to eight MPI processes and
enforces a context switch whenever a process offloads a function — the
"switch-on-offload" policy — so that while one process's kernel runs on
its SPE, another process's PPE-side work proceeds.

In the discrete-event model each worker alternates between a PPE
service quantum (offload dispatch, result handling, context switch —
``ppe_service_s`` per offload, from the calibrated cost model) and an
SPE compute quantum on its dedicated SPE.  PPE queueing and SMT
contention emerge from the simulation; with eight workers the PPE
saturates and becomes the throughput bound, which is exactly the
efficiency loss visible in the paper's Table 8 (2.65x instead of 4x
when going from two to eight SPEs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from ..cell.blade import CellBlade
from ..cell.spe import KernelInvocation
from ..cell.timing import CellTiming, DEFAULT_TIMING
from .simmpi import MasterWorker
from .taskmodel import CellTask

__all__ = ["EDTLPResult", "simulate_edtlp"]


@dataclass(frozen=True)
class EDTLPResult:
    """Outcome of one EDTLP simulation."""

    makespan_s: float
    n_workers: int
    n_tasks: int
    ppe_utilization: float
    spe_utilizations: List[float]
    mpi_messages: int
    #: the simulated chip (for timeline rendering); excluded from eq.
    chip: object = field(default=None, compare=False, repr=False)

    @property
    def mean_spe_utilization(self) -> float:
        return sum(self.spe_utilizations) / len(self.spe_utilizations)


def simulate_edtlp(
    tasks: Sequence[CellTask],
    ppe_service_s: float,
    n_workers: Optional[int] = None,
    timing: CellTiming = DEFAULT_TIMING,
) -> EDTLPResult:
    """Simulate EDTLP execution of *tasks*; returns timing + utilization.

    ``ppe_service_s`` is the PPE busy time per offload (context switch +
    signalling + result handling).  Each worker is bound to one SPE;
    worker count defaults to the SPE count.
    """
    n_workers = n_workers or timing.n_spes
    if n_workers > timing.n_spes:
        raise ValueError(
            f"{n_workers} workers but only {timing.n_spes} SPEs per chip"
        )
    blade = CellBlade(n_chips=1, timing=timing)
    chip = blade.chip
    chip.load_all_spe_threads()

    def execute(worker_index: int, task: CellTask) -> Generator:
        spe = chip.spes[worker_index]
        for _ in range(task.n_batches):
            # PPE quantum: the batch's share of resident compute plus
            # per-offload service (the switch-on-offload path).
            ppe_quantum = (
                task.ppe_batch_s + task.offloads_per_batch * ppe_service_s
            )
            yield from chip.ppe.compute(ppe_quantum)
            chip.ppe.context_switches += 1
            # SPE quantum on this worker's dedicated SPE.
            invocation = KernelInvocation("batch", compute_s=task.spe_batch_s)
            yield from spe.execute(invocation)

    driver = MasterWorker(blade.sim, tasks, n_workers, execute)
    makespan = driver.run()
    return EDTLPResult(
        makespan_s=makespan,
        n_workers=n_workers,
        n_tasks=len(tasks),
        ppe_utilization=chip.ppe.utilization(makespan),
        spe_utilizations=[s.utilization(makespan) for s in chip.spes[:n_workers]],
        mpi_messages=driver.mpi.messages_sent,
        chip=chip,
    )
