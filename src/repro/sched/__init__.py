"""Scheduling models: simulated MPI, EDTLP, LLP, and MGPS.

These reproduce the paper's section 5.3: the naive two-process MPI
mapping, event-driven task-level parallelization (EDTLP), loop-level
parallelization (LLP), and the dynamic multigrain scheduler (MGPS) that
switches between them based on available task-level parallelism.
"""

from .edtlp import EDTLPResult, simulate_edtlp
from .llp import LLPResult, simulate_llp
from .mgps import MGPSPhase, MGPSResult, simulate_mgps, summarize_phases
from .simmpi import DONE_TAG, STOP_TAG, WORK_TAG, MasterWorker, SimMPI
from .static import StaticResult, simulate_static
from .taskmodel import CellTask, make_tasks

__all__ = [
    "EDTLPResult",
    "simulate_edtlp",
    "LLPResult",
    "simulate_llp",
    "MGPSPhase",
    "MGPSResult",
    "simulate_mgps",
    "summarize_phases",
    "DONE_TAG",
    "STOP_TAG",
    "WORK_TAG",
    "MasterWorker",
    "SimMPI",
    "StaticResult",
    "simulate_static",
    "CellTask",
    "make_tasks",
]
