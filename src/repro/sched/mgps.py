"""MGPS: dynamic multigrain parallelism scheduling (paper section 5.3).

MGPS combines EDTLP and LLP at runtime: while at least eight tasks
remain, eight workers run under EDTLP (task-level parallelism fills the
SPEs); when the outstanding-task count drops below eight, idle workers
are suspended and the remaining tasks switch to loop-level parallelism
across the freed SPEs.  The decision is made on-the-fly from the amount
of work the application exposes — the policy that produces the paper's
Table 8.

Both a discrete-event composition (:func:`simulate_mgps`) and the
closed-form composition inside
:meth:`repro.port.profilemodel.CellCostModel.mgps_total_s` are
provided; the test suite checks they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cell.timing import CellTiming, DEFAULT_TIMING
from .edtlp import EDTLPResult, simulate_edtlp
from .llp import LLPResult, simulate_llp
from .taskmodel import CellTask

__all__ = ["MGPSPhase", "MGPSResult", "simulate_mgps", "summarize_phases"]


@dataclass(frozen=True)
class MGPSPhase:
    """One scheduling decision: a mode and the tasks it consumed."""

    mode: str  # "edtlp" | "llp"
    n_tasks: int
    duration_s: float
    detail: object  # the underlying EDTLPResult / LLPResult


@dataclass(frozen=True)
class MGPSResult:
    """Outcome of one MGPS run."""

    makespan_s: float
    phases: List[MGPSPhase]

    @property
    def edtlp_tasks(self) -> int:
        return sum(p.n_tasks for p in self.phases if p.mode == "edtlp")

    @property
    def llp_tasks(self) -> int:
        return sum(p.n_tasks for p in self.phases if p.mode == "llp")

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        return summarize_phases(self.phases)


def summarize_phases(phases: Sequence[MGPSPhase]
                     ) -> Dict[str, Dict[str, float]]:
    """Per-mode phase accounting (phase/task counts and total time).

    Shared vocabulary between the discrete-event simulation above and
    the live cluster scheduler
    (:class:`repro.cluster.scheduler.MultigrainScheduler`), whose run
    journals record this summary.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for phase in phases:
        entry = summary.setdefault(
            phase.mode, {"phases": 0, "tasks": 0, "time_s": 0.0}
        )
        entry["phases"] += 1
        entry["tasks"] += phase.n_tasks
        entry["time_s"] += phase.duration_s
    return summary


def simulate_mgps(
    tasks: Sequence[CellTask],
    ppe_service_s: float,
    parallel_fraction: float,
    overhead_eta: float,
    timing: CellTiming = DEFAULT_TIMING,
) -> MGPSResult:
    """Run the MGPS policy over *tasks*.

    The scheduler inspects the remaining-task count at each phase
    boundary: >= ``n_spes`` outstanding -> an EDTLP phase of one batch
    per SPE; fewer -> an LLP phase with up to four concurrent tasks and
    ``n_spes // active`` SPEs per loop.  Phase makespans accumulate (the
    modes own disjoint hardware epochs, matching the paper's
    suspend-and-switch policy).
    """
    remaining = list(tasks)
    phases: List[MGPSPhase] = []
    total = 0.0
    n = timing.n_spes
    while remaining:
        if len(remaining) >= n:
            # Consume all full batches in one EDTLP phase.
            batch_count = (len(remaining) // n) * n
            batch, remaining = remaining[:batch_count], remaining[batch_count:]
            result = simulate_edtlp(batch, ppe_service_s, n_workers=n,
                                    timing=timing)
            phases.append(
                MGPSPhase("edtlp", len(batch), result.makespan_s, result)
            )
            total += result.makespan_s
        else:
            active = min(len(remaining), 4)
            spes_each = max(1, n // active)
            batch, remaining = remaining[:active], remaining[active:]
            result = simulate_llp(batch, parallel_fraction, overhead_eta,
                                  spes_each, timing=timing)
            phases.append(
                MGPSPhase("llp", len(batch), result.makespan_s, result)
            )
            total += result.makespan_s
    return MGPSResult(makespan_s=total, phases=phases)
