"""The naive static MPI mapping of Tables 1-7 (paper section 5.1).

"In the initial port, we assigned one MPI process to each thread on the
PPE" — at most two workers, each owning one PPE hardware thread and
(once offloading exists) one SPE.  A worker alternates between its
PPE-resident compute, per-offload signalling, and synchronous waits for
its SPE; there is no oversubscription and no loop-level parallelism.

This discrete-event version exists to cross-check the closed forms used
for the headline tables: the analytic model multiplies the per-task
cost out, while this one actually interleaves the PPE/SPE quanta on the
simulator (SMT contention emerges from the shared PPE resource).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Sequence

from ..cell.blade import CellBlade
from ..cell.spe import KernelInvocation
from ..cell.timing import CellTiming, DEFAULT_TIMING
from .simmpi import MasterWorker
from .taskmodel import CellTask

__all__ = ["StaticResult", "simulate_static"]


@dataclass(frozen=True)
class StaticResult:
    """Outcome of a static-mapping simulation."""

    makespan_s: float
    n_workers: int
    n_tasks: int
    ppe_utilization: float
    spe_utilizations: List[float]
    #: the simulated chip (for timeline rendering); excluded from eq.
    chip: object = field(default=None, compare=False, repr=False)


def simulate_static(
    tasks: Sequence[CellTask],
    comm_per_offload_s: float,
    n_workers: int = 2,
    timing: CellTiming = DEFAULT_TIMING,
) -> StaticResult:
    """Simulate the 1- or 2-worker static regime of Tables 1-7.

    ``comm_per_offload_s`` is the PPE-side signalling time per offload
    (mailbox or direct, *uncontended* — SMT inflation emerges from the
    shared PPE).  Tasks' ``comm_s`` must be zero (it is derived here).
    """
    if n_workers not in (1, 2):
        raise ValueError("the static regime has at most 2 workers (PPE SMT)")
    blade = CellBlade(n_chips=1, timing=timing)
    chip = blade.chip
    chip.load_all_spe_threads()

    def execute(worker_index: int, task: CellTask) -> Generator:
        spe = chip.spes[worker_index]
        comm_per_batch = task.offloads_per_batch * comm_per_offload_s
        for _ in range(task.n_batches):
            # The worker's PPE-resident share plus signalling for this
            # quantum of offloads, through the contended PPE...
            yield from chip.ppe.compute(task.ppe_batch_s + comm_per_batch)
            # ...then a synchronous wait for its dedicated SPE.
            yield from spe.execute(
                KernelInvocation("batch", compute_s=task.spe_batch_s)
            )

    driver = MasterWorker(blade.sim, tasks, n_workers, execute)
    makespan = driver.run()
    return StaticResult(
        makespan_s=makespan,
        n_workers=n_workers,
        n_tasks=len(tasks),
        ppe_utilization=chip.ppe.utilization(makespan),
        spe_utilizations=[
            s.utilization(makespan) for s in chip.spes[:n_workers]
        ],
        chip=chip,
    )
