"""Schedulable task descriptors.

A *task* is one independent tree search (a bootstrap replicate or a
multiple-inference run) — the unit of the paper's embarrassingly
parallel master-worker scheme.  The cost model prices a task into PPE
seconds, SPE seconds and an offload count; for discrete-event
scheduling the offload stream is batched into a bounded number of
scheduling quanta so a 128-bootstrap simulation stays tractable while
preserving the PPE/SPE interleaving that creates contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["CellTask", "make_tasks"]


@dataclass(frozen=True)
class CellTask:
    """One search task, pre-priced for the simulated Cell."""

    task_id: int
    spe_s: float  # total SPE kernel time
    ppe_s: float  # total PPE-resident compute (uncontended)
    comm_s: float  # total signalling time (uncontended)
    offloads: int  # PPE->SPE dispatches
    n_batches: int  # scheduling quanta used by the DEVS schedulers

    def __post_init__(self) -> None:
        if self.spe_s < 0 or self.ppe_s < 0 or self.comm_s < 0:
            raise ValueError("task times must be non-negative")
        if self.offloads < 0:
            raise ValueError("offload count must be non-negative")
        if self.n_batches < 1:
            raise ValueError("need at least one batch")

    @property
    def serial_s(self) -> float:
        """Uncontended single-worker duration."""
        return self.spe_s + self.ppe_s + self.comm_s

    @property
    def spe_batch_s(self) -> float:
        return self.spe_s / self.n_batches

    @property
    def ppe_batch_s(self) -> float:
        return (self.ppe_s + self.comm_s) / self.n_batches

    @property
    def offloads_per_batch(self) -> float:
        return self.offloads / self.n_batches


def make_tasks(count: int, spe_s: float, ppe_s: float, comm_s: float,
               offloads: int, n_batches: int = 64) -> List[CellTask]:
    """A homogeneous batch of *count* tasks (bootstraps are iid)."""
    if count < 1:
        raise ValueError("need at least one task")
    return [
        CellTask(task_id=i, spe_s=spe_s, ppe_s=ppe_s, comm_s=comm_s,
                 offloads=offloads, n_batches=n_batches)
        for i in range(count)
    ]
