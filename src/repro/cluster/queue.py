"""Fault-tolerant multiprocessing work queue (the live master-worker).

The master owns per-worker inboxes and one *per-worker* result pipe.
(A single shared outbox queue would hold a cross-process write lock:
terminating a worker — RSS watchdog, task timeout, staleness sweep —
while its feeder thread holds that lock wedges every other worker's
messages.  Per-worker pipes confine the damage of a kill to the dead
worker's own channel, which the master simply discards.)  Workers run
a daemon heartbeat thread, stream one message per finished *replicate*
(so a batch that dies mid-way loses only its tail), and report failures
with full tracebacks.  The master requeues work from dead, hung, or
timed-out workers with bounded exponential backoff and spawns
replacements, so an injected ``os._exit`` mid-task (see
:class:`WorkerPlans`) costs one retry, never the run.

Determinism: every replicate result is a pure function of
``(seed, kind, replicate)``, so retry count, worker count, arrival
order, and task granularity are all invisible in the final
:class:`~repro.phylo.inference.AnalysisResult`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from zlib import crc32

import numpy as np

from ..chaos import injector as _chaos
from ..chaos.plan import (
    CLUSTER_STEAL_RACE,
    CLUSTER_WORKER_CRASH_ACK,
    CLUSTER_WORKER_HANG,
    CLUSTER_WORKER_OOM,
    CLUSTER_WORKER_STALL,
)
from ..phylo.inference import default_model_for, infer_tree
from ..phylo.models import GTR, HKY85, JC69, K80
from ..phylo.rates import GammaRates
from ..phylo.search import SearchConfig
from ..sched.mgps import summarize_phases
from .aggregate import StreamingAggregator
from .bootstop import BootstopController
from .cancel import REASON_DEADLINE, CancelToken, TaskCancelled
from .checkpoint import RunJournal
from .jobs import ClusterTask, JobSpec, PendingTask, home_group
from .scheduler import MultigrainScheduler

__all__ = [
    "ClusterConfig",
    "ClusterQueue",
    "TaskExecutionError",
    "WorkerPlans",
    "execute_replicate",
    "retry_backoff",
]


class TaskExecutionError(RuntimeError):
    """A task failed permanently; carries the originating spec."""

    def __init__(self, task: ClusterTask, attempt: int, error: str):
        self.task = task
        self.attempt = attempt
        self.error = error
        super().__init__(
            f"task {task.task_id} (kind={task.kind}, "
            f"replicates={list(task.replicates)}, seed={task.seed}) "
            f"failed after {attempt} attempt(s): {error}"
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Fault-tolerance knobs of the master loop."""

    n_workers: int = 2
    task_timeout_s: float = 300.0
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    #: Exponential backoff ceiling: retries never wait longer than this.
    retry_backoff_cap_s: float = 2.0
    #: Deterministic jitter fraction on top of the capped exponential
    #: delay (0.25 = up to +25%), derived from the task id and attempt —
    #: never ``random.random()`` — so two runs of the same plan produce
    #: the same retry schedule.
    retry_jitter: float = 0.25
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 10.0
    #: Per-worker resident-set ceiling in MiB (None = watchdog off).
    #: A worker over the ceiling is journalled (``worker_rss_exceeded``)
    #: and terminated, and its task requeued as a retry — a visible,
    #: bounded recovery instead of a silent kernel OOM-kill.
    max_worker_rss_mb: Optional[float] = None


def _rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of *pid* via ``/proc`` (None if unsupported)."""
    try:
        with open(f"/proc/{pid}/statm") as fh:
            fields = fh.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        return None


def retry_backoff(cfg: ClusterConfig, task_id: str, attempt: int) -> float:
    """Capped exponential backoff with deterministic seeded jitter.

    The jitter decorrelates retries of different tasks (they do not all
    hammer the queue on the same tick) while staying a pure function of
    ``(task_id, attempt)`` — a resumed or re-run job reproduces the
    exact same delays.
    """
    base = min(
        cfg.retry_backoff_cap_s,
        cfg.retry_backoff_s * (2 ** (attempt - 1)),
    )
    jitter = crc32(f"{task_id}:{attempt}".encode()) / 2**32
    return base * (1.0 + cfg.retry_jitter * jitter)


@dataclass(frozen=True)
class WorkerPlans:
    """Failure injection for tests: ``task_id -> attempts`` to sabotage.

    ``crash`` kills the worker process mid-task (``os._exit``: after
    streaming all but the task's last replicate, so partial batch
    results are exercised), ``fail`` raises inside the task, ``hang``
    sleeps past any timeout.
    """

    crash: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    fail: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    hang: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class ExecutionContext:
    """Model/search parameters shipped to every worker."""

    config: Optional[SearchConfig] = None
    model_name: Optional[str] = None
    alpha: Optional[float] = None
    categories: int = 4

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "ExecutionContext":
        return cls(config=spec.config, model_name=spec.model_name,
                   alpha=spec.alpha, categories=spec.categories)


class _CounterCollector:
    """Minimal tracer: harvests ``engine.perf_counters`` per task.

    Every other tracer hook is a no-op, so attaching it cannot perturb
    the search trajectory (bit-identical to an untraced run).
    """

    def __init__(self):
        self._sources = []

    def add_counter_source(self, source) -> None:
        self._sources.append(source)

    def perf_counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for source in self._sources:
            merged.update(source())
        return merged

    def push_context(self, name):  # engine calls these unconditionally
        return None

    def __getattr__(self, name):
        return lambda *args, **kwargs: None


def _build_model(ctx: ExecutionContext, patterns):
    """The same model the serial CLI path would construct."""
    name = ctx.model_name
    if name is None:
        return None  # infer_tree applies default_model_for per replicate
    if name == "GTR":
        return GTR((1.0, 2.5, 1.0, 1.0, 2.5, 1.0),
                   tuple(patterns.base_frequencies()))
    if name == "JC69":
        return JC69()
    if name == "K80":
        return K80()
    if name == "HKY85":
        return HKY85(2.0, tuple(patterns.base_frequencies()))
    if name == "default":
        return default_model_for(patterns)
    raise ValueError(f"unknown model {name}")


def execute_replicate(patterns, ctx: ExecutionContext, kind: str,
                      replicate: int, seed: int, cancel=None) -> dict:
    """Run one replicate; the seed derivation of ``parallel.TaskSpec``.

    Returns a JSON-safe payload (Newick, log likelihood, kernel call
    counts, and the engine's :meth:`perf_counters` snapshot).  A
    tripped *cancel* token unwinds with ``TaskCancelled`` before any
    partial result is produced — a cancelled replicate is discarded
    whole, never streamed, so the result set stays a pure function of
    the completed replicate keys.
    """
    collector = _CounterCollector()
    model = _build_model(ctx, patterns)
    rate_model = (GammaRates(ctx.alpha, ctx.categories)
                  if ctx.alpha is not None else None)
    if kind == "inference":
        result = infer_tree(
            patterns, model=model, rate_model=rate_model, config=ctx.config,
            seed=seed, tracer=collector, replicate=replicate, cancel=cancel,
        )
    elif kind == "bootstrap":
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, 7919, replicate])
        )
        result = infer_tree(
            patterns.bootstrap_replicate(rng), model=model,
            rate_model=rate_model, config=ctx.config, seed=seed + 1,
            tracer=collector, is_bootstrap=True, replicate=replicate,
            cancel=cancel,
        )
    else:
        raise ValueError(f"unknown task kind {kind!r}")
    return {
        "kind": kind,
        "replicate": replicate,
        "seed": seed,
        "newick": result.newick,
        "log_likelihood": result.log_likelihood,
        "newview_calls": result.newview_calls,
        "makenewz_calls": result.makenewz_calls,
        "evaluate_calls": result.evaluate_calls,
        "is_bootstrap": result.is_bootstrap,
        "perf": collector.perf_counters(),
    }


#: Pages the ``cluster.worker_oom`` site pins resident, in MiB.
_OOM_BALLAST_MB = 192


def _worker_main(worker_id: int, inbox, outbox, patterns,
                 ctx: ExecutionContext, plans: WorkerPlans,
                 heartbeat_interval_s: float,
                 shard_path: Optional[str] = None,
                 group: int = 0,
                 deadline: Optional[float] = None) -> None:
    """Worker process: heartbeat thread + task loop.

    *outbox* is this worker's private end of a master-held pipe; a
    worker killed mid-send can tear its own channel but nobody else's.
    ``Connection.send`` is not thread-safe, so the heartbeat thread and
    the task loop share a process-local lock (which dies with the
    process — the master never waits on it).

    With *shard_path* set (sharded journals, DESIGN.md §15) the worker
    WALs each result into its group's shard *before* streaming it to
    the master — the disk record, not the queue message, is the
    durable one, so a master that dies mid-drain loses nothing.

    *deadline* is the run's absolute ``time.monotonic()`` expiry (the
    monotonic clock survives ``fork``, so master and worker agree on it
    without traffic).  The worker polls it at the search's safe points
    and reports a ``cancelled`` message instead of a result; the master
    trips its own copy of the deadline at the same instant.
    """
    import signal as _signal
    import threading

    from .shards import ShardWriter

    # A fork child inherits the parent's signal handlers.  Under the
    # serve CLI the parent is an asyncio process whose SIGTERM handler
    # only writes to a wakeup fd — harmless there, but inherited here
    # it swallows the master's ``terminate()`` and the worker becomes
    # unkillable (until SIGKILL).  Restore defaults: SIGTERM kills,
    # SIGINT is ignored (shutdown is the master's call, not the
    # terminal's).
    try:
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
        _signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    stop = threading.Event()
    token = CancelToken(deadline=deadline) if deadline is not None else None
    send_lock = threading.Lock()
    conn = outbox

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    def beat():
        while not stop.is_set():
            try:
                send(("heartbeat", worker_id))
            except Exception:
                return
            stop.wait(heartbeat_interval_s)

    threading.Thread(target=beat, daemon=True).start()
    shard = ShardWriter(shard_path, group) if shard_path else None
    try:
        while True:
            item = inbox.get()
            if item is None:
                break
            task, attempt = item
            send(("started", worker_id, task.task_id, attempt))
            # Chaos process faults are decided on (task_id, attempt) —
            # worker-count- and dispatch-order-independent — by the
            # injector this forked process inherited from the master.
            chaos_key = f"{task.task_id}:{attempt}"
            try:
                if attempt in plans.fail.get(task.task_id, ()):
                    raise RuntimeError(
                        f"injected failure ({task.task_id} attempt {attempt})"
                    )
                if attempt in plans.hang.get(task.task_id, ()):
                    time.sleep(3600)
                if _chaos._ACTIVE is not None and _chaos.fire(
                    CLUSTER_WORKER_HANG, key=chaos_key
                ):
                    # Hang *past the heartbeat*: stop beating first so
                    # the master's staleness sweep, not the task
                    # timeout, is what must catch this.
                    stop.set()
                    time.sleep(3600)
                if _chaos._ACTIVE is not None and _chaos.fire(
                    CLUSTER_WORKER_STALL, key=chaos_key
                ):
                    # Wedge while *still heartbeating* (a livelocked
                    # worker, not a dead one): the task timeout, not the
                    # staleness sweep, must catch this.
                    time.sleep(3600)
                if _chaos._ACTIVE is not None and _chaos.fire(
                    CLUSTER_WORKER_OOM, key=chaos_key
                ):
                    # Runaway allocation: pin pages resident, then stall
                    # with the heartbeat alive so the RSS watchdog (when
                    # configured) is what must journal and requeue.
                    ballast = np.ones((_OOM_BALLAST_MB * 1024 * 1024) // 8)
                    ballast[0] = 2.0
                    time.sleep(3600)
                crash = attempt in plans.crash.get(task.task_id, ())
                last = len(task.replicates) - 1
                for position, replicate in enumerate(task.replicates):
                    if crash and position == last:
                        os._exit(17)  # simulated mid-task worker death
                    payload = execute_replicate(
                        patterns, ctx, task.kind, replicate, task.seed,
                        cancel=token,
                    )
                    if shard is not None:
                        try:
                            shard.append(
                                "replicate_done", task=task.task_id,
                                attempt=attempt, payload=payload,
                            )
                        except _chaos.InjectedCrash:
                            # cluster.shard_torn: the append tore and
                            # the worker dies with it — the master's
                            # liveness sweep requeues the task and the
                            # merge-replay isolates the torn line.
                            os._exit(29)
                    send(
                        ("replicate", worker_id, task.task_id, attempt,
                         payload)
                    )
                if _chaos._ACTIVE is not None and _chaos.fire(
                    CLUSTER_WORKER_CRASH_ACK, key=chaos_key
                ):
                    # Every replicate streamed, then death before the
                    # task-finished ack: the master must reconcile a
                    # fully-delivered task against a dead worker.
                    os._exit(23)
                send(("finished", worker_id, task.task_id, attempt))
            except TaskCancelled:
                # Deadline tripped mid-replicate: the partial replicate
                # is discarded whole (already-streamed replicates of the
                # batch stand).  No requeue — the master's own copy of
                # the deadline ends the run.
                send(("cancelled", worker_id, task.task_id, attempt))
            except BaseException:
                send(
                    ("failed", worker_id, task.task_id, attempt,
                     traceback.format_exc())
                )
    finally:
        stop.set()
        if shard is not None:
            shard.close()


@dataclass
class _Worker:
    proc: multiprocessing.Process
    inbox: object
    conn: object  # master's receive end of the worker's result pipe
    last_seen: float
    group: int = 0
    current: Optional[Tuple[ClusterTask, int, float]] = None  # task, attempt, t0


class ClusterQueue:
    """The master loop: dispatch, monitor, retry, aggregate."""

    def __init__(
        self,
        patterns,
        ctx: Optional[ExecutionContext] = None,
        cluster: Optional[ClusterConfig] = None,
        journal: Optional[RunJournal] = None,
        plans: Optional[WorkerPlans] = None,
        aggregator: Optional[StreamingAggregator] = None,
        bootstop: Optional[BootstopController] = None,
    ):
        self.patterns = patterns
        self.ctx = ctx or ExecutionContext()
        self.cfg = cluster or ClusterConfig()
        self.journal = journal or RunJournal(None)
        self.plans = plans or WorkerPlans()
        self.aggregator = aggregator or StreamingAggregator()
        self.bootstop = bootstop
        self.scheduler: Optional[MultigrainScheduler] = None
        #: why the run stopped early (``REASON_*``), None on completion
        self.cancelled_reason: Optional[str] = None
        self._force_shutdown = False

    def run(
        self,
        tasks: List[ClusterTask],
        already: Optional[Dict[Tuple[str, int], dict]] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Dict[Tuple[str, int], dict]:
        """Execute *tasks*; returns ``(kind, replicate) -> payload``.

        *already* seeds results replayed from a journal (their tasks
        must not be in *tasks* - :func:`~repro.cluster.jobs.expand_job`
        handles the exclusion).

        *cancel* is the run's cooperative cancellation token.  The
        master polls it once per loop iteration; workers inherit its
        absolute deadline across ``fork``.  When it trips, the master
        journals the event (``task_deadline_exceeded`` for a deadline,
        ``run_cancelled`` otherwise — e.g. a drain), sets
        :attr:`cancelled_reason`, terminates the workers, and returns
        the completed results so the caller can salvage or checkpoint.
        """
        results: Dict[Tuple[str, int], dict] = dict(already or {})
        for payload in results.values():
            self.aggregator.ingest(payload)
            if self.bootstop is not None and payload.get("is_bootstrap"):
                self.bootstop.note(payload["replicate"], payload["newick"])
        remaining = {
            key for t in tasks for key in t.keys() if key not in results
        }
        # Sharded journals partition the pending work into one queue per
        # worker group (task identity decides the home queue); a plain
        # journal is the degenerate single-group case, so both layouts
        # run the same loop and stealing simply never fires with one
        # group.
        n_groups = int(getattr(self.journal, "n_shards", 1) or 1)
        sharded = hasattr(self.journal, "shard_path")
        pending: Dict[int, List[PendingTask]] = {
            g: [] for g in range(n_groups)
        }
        for t in tasks:
            pending[home_group(t.task_id, n_groups)].append(PendingTask(t))
        # Replayed results alone may already satisfy the autoMRE
        # criterion (a crash can land between the converging replicate
        # and the journalled decision); check before spawning anything.
        pending = self._bootstop_check(pending, remaining, results)
        if not remaining:
            return results

        mp = multiprocessing.get_context("fork")
        workers: Dict[int, _Worker] = {}
        self._next_wid = 0
        n_pending = sum(len(q) for q in pending.values())
        n_workers = min(self.cfg.n_workers, max(1, n_pending))
        self.scheduler = MultigrainScheduler(n_workers)

        worker_deadline = cancel.deadline if cancel is not None else None

        def spawn(group: Optional[int] = None) -> None:
            wid = self._next_wid
            self._next_wid += 1
            if group is None:
                group = wid % n_groups
            inbox = mp.Queue()
            rx, tx = mp.Pipe(duplex=False)
            proc = mp.Process(
                target=_worker_main,
                args=(wid, inbox, tx, self.patterns, self.ctx,
                      self.plans, self.cfg.heartbeat_interval_s,
                      self.journal.shard_path(group) if sharded else None,
                      group, worker_deadline),
                daemon=True,
            )
            proc.start()
            # Close the master's copy of the send end: once the worker
            # dies, its pipe reads EOF instead of blocking forever on a
            # torn frame.
            tx.close()
            workers[wid] = _Worker(proc=proc, inbox=inbox, conn=rx,
                                   last_seen=time.monotonic(), group=group)

        def reap(wid: int) -> None:
            """Forget a worker and discard its (possibly torn) pipe."""
            worker = workers.pop(wid)
            try:
                worker.conn.close()
            except OSError:
                pass

        def drain_messages(timeout: float) -> None:
            """Receive from every readable worker pipe.

            A dead worker's pipe raises EOF/OSError mid-``recv`` — the
            partial frame is discarded here and the liveness sweep
            journals the death; no other worker's channel is affected.
            """
            conns = {w.conn: None for w in workers.values()}
            if not conns:
                time.sleep(timeout)
                return
            try:
                ready = mp_connection.wait(list(conns), timeout)
            except OSError:
                return
            for conn in ready:
                try:
                    while True:
                        self._handle(conn.recv(), workers, results,
                                     remaining, requeue, time.monotonic())
                        if not conn.poll():
                            break
                except (EOFError, OSError):
                    continue  # worker died mid-write; the sweep reaps it

        def requeue(task: ClusterTask, attempt: int, error: str,
                    now: float) -> None:
            if self._bootstop_cancelled(task, results):
                return  # bootstopping already cancelled this work
            if all(key in results for key in task.keys()):
                return  # everything streamed out before the death
            will_retry = attempt < 1 + self.cfg.max_retries
            backoff = retry_backoff(self.cfg, task.task_id, attempt)
            self.journal.append(
                "task_failed", task=task.task_id, attempt=attempt,
                attempts=1 + self.cfg.max_retries,
                backoff_ms=round(backoff * 1000.0, 3),
                error=error.strip().splitlines()[-1] if error else "",
                will_retry=will_retry,
            )
            if not will_retry:
                raise TaskExecutionError(task, attempt, error)
            pending[home_group(task.task_id, n_groups)].append(
                PendingTask(task, attempt + 1, now + backoff)
            )

        for _ in range(n_workers):
            spawn()

        rss_limit = (None if self.cfg.max_worker_rss_mb is None
                     else self.cfg.max_worker_rss_mb * 1024 * 1024)

        try:
            while remaining:
                now = time.monotonic()

                # -- cooperative cancellation --------------------------------
                if cancel is not None and cancel.cancelled:
                    reason = cancel.reason
                    self.cancelled_reason = reason
                    self._force_shutdown = True
                    if reason == REASON_DEADLINE:
                        self.journal.append(
                            "task_deadline_exceeded",
                            remaining=len(remaining),
                            n_done=len(results),
                        )
                    else:
                        self.journal.append(
                            "run_cancelled", reason=reason,
                            remaining=len(remaining), n_done=len(results),
                        )
                    break

                # -- dispatch to idle workers --------------------------------
                idle = [w for w in workers.values()
                        if w.current is None and w.proc.is_alive()]
                if idle and any(pending.values()):
                    pending = self.scheduler.plan_groups(pending, now)
                    for worker in idle:
                        entry, victim = self._next_entry(
                            pending, worker.group, now
                        )
                        if entry is None:
                            break
                        if victim is not None:
                            self._steal(entry, victim, worker, pending)
                        worker.current = (entry.task, entry.attempt, now)
                        worker.inbox.put((entry.task, entry.attempt))
                        self.scheduler.dispatched(entry)

                # -- drain worker messages -----------------------------------
                drain_messages(0.05)
                pending = self._bootstop_check(pending, remaining, results)

                # -- liveness / timeout / RSS sweep --------------------------
                now = time.monotonic()
                for wid, worker in list(workers.items()):
                    dead = not worker.proc.is_alive()
                    over_rss = False
                    if rss_limit is not None and not dead:
                        rss = _rss_bytes(worker.proc.pid)
                        if rss is not None and rss > rss_limit:
                            over_rss = True
                            self.journal.append(
                                "worker_rss_exceeded", worker=wid,
                                task=(worker.current[0].task_id
                                      if worker.current else None),
                                rss_mb=round(rss / 1048576.0, 1),
                                limit_mb=self.cfg.max_worker_rss_mb,
                            )
                    if worker.current is not None:
                        task, attempt, t0 = worker.current
                        timed_out = now - t0 > self.cfg.task_timeout_s
                        stale = (now - worker.last_seen
                                 > self.cfg.heartbeat_timeout_s)
                        if dead or timed_out or stale or over_rss:
                            reason = ("crash" if dead else
                                      "rss" if over_rss else
                                      "timeout" if timed_out else "heartbeat")
                            self.journal.append(
                                "worker_dead", worker=wid,
                                task=task.task_id, reason=reason,
                            )
                            if not dead:
                                worker.proc.terminate()
                                worker.proc.join(timeout=2.0)
                                if worker.proc.is_alive():
                                    worker.proc.kill()
                                    worker.proc.join(timeout=1.0)
                            reap(wid)
                            requeue(task, attempt,
                                    f"worker {wid} died ({reason})", now)
                            if remaining:
                                spawn(worker.group)
                    elif dead or over_rss:
                        if not dead:
                            worker.proc.terminate()
                            worker.proc.join(timeout=2.0)
                            if worker.proc.is_alive():
                                worker.proc.kill()
                                worker.proc.join(timeout=1.0)
                        reap(wid)
                        if any(pending.values()) or remaining:
                            spawn(worker.group)

            # All replicates landed; drain the trailing task_finished
            # acknowledgements so the journal closes every task.  A
            # cancelled run skips this — its workers are being killed.
            deadline = time.monotonic() + \
                (0.0 if self.cancelled_reason else 1.0)
            while (any(w.current is not None for w in workers.values())
                   and time.monotonic() < deadline):
                drain_messages(0.05)
        finally:
            self._shutdown(workers)

        phases = self.scheduler.finish()
        self.journal.append(
            "run_progress",
            phases=summarize_phases(phases),
            splits=self.scheduler.splits,
            steals=self.scheduler.steals,
        )
        return results

    # -- internals ----------------------------------------------------------

    def _next_entry(self, pending: Dict[int, List[PendingTask]],
                    home: int, now: float):
        """Pop the next ready entry for a worker in group *home*.

        Own queue first (FIFO head).  An empty home queue steals from
        the deterministically-chosen *richest* other queue (most ready
        entries; ties break toward the lowest group index) and takes its
        *tail* — the entry its owner would reach last — so steals and
        owner dispatch collide as late as possible.  Returns
        ``(entry, victim_group)``; ``victim_group`` is None for an
        own-queue pop, and ``(None, None)`` means nothing is ready
        anywhere (backoff gates included).
        """
        own = pending.get(home, ())
        for entry in own:
            if entry.not_before <= now:
                own.remove(entry)
                return entry, None
        victim, richest = None, 0
        for group in sorted(pending):
            if group == home:
                continue
            ready = sum(1 for p in pending[group] if p.not_before <= now)
            if ready > richest:
                victim, richest = group, ready
        if victim is None:
            return None, None
        for entry in reversed(pending[victim]):
            if entry.not_before <= now:
                pending[victim].remove(entry)
                return entry, victim
        return None, None

    def _steal(self, entry: PendingTask, victim: int, worker: _Worker,
               pending: Dict[int, List[PendingTask]]) -> None:
        """Account for a cross-group steal (journal + chaos site).

        The ``cluster.steal_race`` fault models the distributed race
        this single-master design is immune to by construction: the
        victim queue keeps a duplicate of the stolen entry, so the task
        is dispatched twice and the idempotent first-wins result map
        must absorb the second delivery.
        """
        self.scheduler.stole()
        self.journal.append(
            "task_stolen", task=entry.task.task_id, attempt=entry.attempt,
            from_group=victim, to_group=worker.group,
        )
        if _chaos._ACTIVE is not None and _chaos.fire(
            CLUSTER_STEAL_RACE, key=f"{entry.task.task_id}:{entry.attempt}"
        ):
            pending[victim].append(
                PendingTask(entry.task, entry.attempt, entry.not_before)
            )

    def _bootstop_stopped_replicate(self, payload: dict) -> bool:
        """True when bootstopping has already cancelled this replicate."""
        return (
            self.bootstop is not None
            and self.bootstop.stopped_at is not None
            and bool(payload.get("is_bootstrap"))
            and payload["replicate"] >= self.bootstop.stopped_at
        )

    def _bootstop_cancelled(self, task: ClusterTask, results) -> bool:
        """True when every outstanding replicate of *task* is cancelled."""
        if self.bootstop is None or self.bootstop.stopped_at is None:
            return False
        stop_at = self.bootstop.stopped_at
        return task.kind == "bootstrap" and all(
            r >= stop_at or ("bootstrap", r) in results
            for r in task.replicates
        )

    def _bootstop_check(self, pending, remaining, results):
        """Poll the autoMRE controller; cancel bootstrap work on stop.

        Journals the decision, drops the pending bootstrap tasks, and
        evicts replicates past the stop point from the aggregate and
        the result map — in-flight workers may still deliver them, but
        :meth:`_handle` discards those arrivals, so the final payload
        set is exactly ``[0, stop_at)`` regardless of timing.
        """
        if self.bootstop is None:
            return pending
        check = self.bootstop.poll()
        if check is None:
            return pending
        stop_at = self.bootstop.stopped_at
        self.journal.append(
            "bootstop_converged",
            stop_at=stop_at,
            requested=self.bootstop.n_requested,
            metric=check.metric,
            pass_fraction=check.pass_fraction,
            threshold=self.bootstop.config.threshold,
            quorum=self.bootstop.config.quorum,
            n_permutations=self.bootstop.config.n_permutations,
            check_every=self.bootstop.config.check_every,
            seed=self.bootstop.seed,
        )
        pending = {
            group: [p for p in queue if p.task.kind != "bootstrap"]
            for group, queue in pending.items()
        }
        for key in [k for k in remaining if k[0] == "bootstrap"]:
            remaining.discard(key)
        for key in [k for k in results
                    if k[0] == "bootstrap" and k[1] >= stop_at]:
            del results[key]
        self.aggregator.truncate_bootstraps(stop_at)
        return pending

    def _handle(self, message, workers, results, remaining, requeue,
                now: float) -> None:
        kind, wid = message[0], message[1]
        worker = workers.get(wid)
        if worker is not None:
            worker.last_seen = now
        if kind == "heartbeat":
            return
        if kind == "started":
            _, _, task_id, attempt = message
            self.journal.append("task_started", task=task_id,
                                attempt=attempt, worker=wid)
        elif kind == "replicate":
            _, _, task_id, attempt, payload = message
            if self._bootstop_stopped_replicate(payload):
                return  # raced past the journalled stop decision
            key = (payload["kind"], payload["replicate"])
            if key not in results:
                results[key] = payload
                self.aggregator.ingest(payload)
                if self.bootstop is not None and payload.get("is_bootstrap"):
                    self.bootstop.note(payload["replicate"],
                                       payload["newick"])
                if not hasattr(self.journal, "shard_path"):
                    # Sharded runs WAL the payload in the worker before
                    # it is streamed; journaling it again here would
                    # re-create the single-file funnel.
                    self.journal.append("replicate_done", task=task_id,
                                        payload=payload)
            remaining.discard(key)
        elif kind == "finished":
            _, _, task_id, attempt = message
            self.journal.append("task_finished", task=task_id,
                                attempt=attempt, worker=wid)
            if worker is not None:
                worker.current = None
        elif kind == "cancelled":
            # The worker's copy of the deadline tripped; no requeue —
            # the master's own token ends the run on its next loop.
            if worker is not None:
                worker.current = None
        elif kind == "failed":
            _, _, task_id, attempt, error = message
            if worker is not None and worker.current is not None:
                task = worker.current[0]
                worker.current = None
                requeue(task, attempt, error, now)

    def _shutdown(self, workers: Dict[int, _Worker]) -> None:
        if self._force_shutdown:
            # Cancelled run: don't wait on wedged or mid-replicate
            # workers — completed replicates are already journalled,
            # partial ones are discarded by design.
            for worker in workers.values():
                worker.proc.terminate()
            for worker in workers.values():
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            return
        for worker in workers.values():
            try:
                worker.inbox.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for worker in workers.values():
            worker.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                # SIGTERM didn't land (blocked in C code or a captured
                # handler): escalate so the run can't leak a process.
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
