"""autoMRE-style bootstopping: stop bootstrap replicates on convergence.

RAxML's ``autoMRE`` criterion (the ab12phylo workflow runs
``--bs-trees autoMRE{1000}``) turns a fixed-size bootstrap campaign into
a converge-and-stop job: after every batch of replicates the support
values are tested for stability, and the campaign halts early once they
have converged.  This module implements that criterion for
:mod:`repro.cluster` as a *deterministic* aggregation policy:

* Convergence is evaluated only over the **contiguous prefix**
  ``[0, k)`` of bootstrap replicates, at checkpoints ``k`` that are
  multiples of ``check_every``.  Replicates land in arbitrary order
  (workers race), but the prefix is a pure function of the job spec, so
  the stop decision is independent of worker count, dispatch order, and
  retries.
* The test itself (:func:`evaluate_convergence`) is a pure function of
  ``(split sets of replicates 0..k-1, seed, k)``: the replicate indices
  are permuted ``n_permutations`` times with a seeded generator, each
  permutation is split into two halves, per-bipartition support
  frequencies are computed on both halves, and the permutation *passes*
  when the mean absolute support difference is at most ``threshold``.
  The prefix has converged when at least ``quorum`` of the permutations
  pass — the permuted-split majority-rule agreement test behind
  RAxML's autoMRE bootstopping.
* The decision is journalled (``bootstop_converged``) so an interrupted
  run resumes to a **bit-identical** result: replay truncates the
  bootstrap DAG to ``[0, stop_at)`` and discards any replicate that
  raced past the stop point before the decision was reached.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..phylo.tree import Tree

__all__ = [
    "BootstopConfig",
    "BootstopCheck",
    "BootstopController",
    "evaluate_convergence",
]

#: Salt mixed into the permutation seed so bootstop draws never collide
#: with the replicate-seed derivation (7919) of the task DAG.
_PERMUTATION_SALT = 104729

Splits = FrozenSet[FrozenSet[str]]


@dataclass(frozen=True)
class BootstopConfig:
    """Knobs of the autoMRE criterion (all influence the digest/journal).

    ``check_every`` is both the checkpoint spacing and the minimum
    replicate count before the first test; ``threshold`` is the mean
    absolute support difference a permuted half-split may show and still
    count as converged; ``quorum`` is the fraction of permutations that
    must pass.
    """

    check_every: int = 50
    n_permutations: int = 100
    threshold: float = 0.03
    quorum: float = 0.99

    def __post_init__(self):
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1: {self}")
        if self.n_permutations < 1:
            raise ValueError(f"n_permutations must be >= 1: {self}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1): {self}")
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError(f"quorum must be in (0, 1]: {self}")

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "BootstopConfig":
        return cls(**payload)


@dataclass(frozen=True)
class BootstopCheck:
    """Outcome of one convergence evaluation at prefix size ``at``."""

    at: int
    converged: bool
    #: Mean (over permutations) of the mean absolute support difference
    #: between the two permuted halves; 1.0 for degenerate prefixes.
    metric: float
    #: Fraction of permutations whose half-split difference was within
    #: the threshold.
    pass_fraction: float

    def to_json(self) -> Dict[str, object]:
        return asdict(self)


def evaluate_convergence(
    split_sets: Sequence[Splits],
    seed: int,
    config: BootstopConfig,
) -> BootstopCheck:
    """Permuted half-split support agreement over a replicate prefix.

    Pure function: the same ``split_sets`` (in replicate order), ``seed``
    and ``config`` always produce the same verdict, which is what makes
    the live stop decision reproducible on resume.  Degenerate prefixes
    (fewer than two replicates, or no non-trivial bipartitions at all)
    never converge — a single replicate carries no agreement signal.
    """
    n = len(split_sets)
    if n < 2:
        return BootstopCheck(at=n, converged=False, metric=1.0,
                             pass_fraction=0.0)
    # Canonically ordered union of bipartitions: sort each split's taxa,
    # then sort the splits, so the membership matrix layout (and hence
    # the metric arithmetic) is independent of set-iteration order.
    union: List[FrozenSet[str]] = sorted(
        {split for splits in split_sets for split in splits},
        key=lambda s: tuple(sorted(s)),
    )
    if not union:
        return BootstopCheck(at=n, converged=False, metric=1.0,
                             pass_fraction=0.0)
    membership = np.zeros((n, len(union)), dtype=np.float64)
    index = {split: j for j, split in enumerate(union)}
    for i, splits in enumerate(split_sets):
        for split in splits:
            membership[i, index[split]] = 1.0

    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _PERMUTATION_SALT, n])
    )
    half = n // 2
    distances = np.empty(config.n_permutations, dtype=np.float64)
    for p in range(config.n_permutations):
        order = rng.permutation(n)
        first = membership[order[:half]].mean(axis=0)
        second = membership[order[half:2 * half]].mean(axis=0)
        distances[p] = np.abs(first - second).mean()
    passed = distances <= config.threshold
    pass_fraction = float(passed.mean())
    return BootstopCheck(
        at=n,
        converged=pass_fraction >= config.quorum,
        metric=float(distances.mean()),
        pass_fraction=pass_fraction,
    )


def newick_splits(newick: str) -> Splits:
    """The canonical non-trivial bipartition set of one replicate tree."""
    return frozenset(Tree.from_newick(newick).bipartitions())


class BootstopController:
    """Master-side bookkeeping: prefix tracking and checkpoint firing.

    The controller never looks at the clock or the arrival order: it
    records each bootstrap replicate's bipartitions by replicate index
    and, on :meth:`poll`, walks the checkpoint ladder (``check_every``,
    ``2*check_every``, ...) in order, evaluating each checkpoint exactly
    once as soon as its prefix is complete.  ``poll`` returns the
    :class:`BootstopCheck` that converged (at most once); afterwards
    :attr:`stopped_at` holds the stop point.
    """

    def __init__(self, config: BootstopConfig, n_requested: int, seed: int):
        self.config = config
        self.n_requested = n_requested
        self.seed = seed
        self.stopped_at: Optional[int] = None
        self.last_check: Optional[BootstopCheck] = None
        self._splits: Dict[int, Splits] = {}
        self._next_checkpoint = config.check_every
        # Contiguity watermark: replicates [0, _contiguous) are all
        # recorded.  Advanced incrementally on every note(), so the
        # per-replicate prefix test is O(1) amortized instead of the
        # O(k) rescan that made thousand-replicate campaigns pay O(R^2)
        # in support bookkeeping.
        self._contiguous = 0

    def note(self, replicate: int, newick: str) -> None:
        """Record one finished bootstrap replicate's bipartitions."""
        if replicate not in self._splits:
            self._splits[replicate] = newick_splits(newick)
            while self._contiguous in self._splits:
                self._contiguous += 1

    def restore(self, stop_at: int) -> None:
        """Adopt a journalled stop decision (resume past the boundary)."""
        self.stopped_at = stop_at

    def _prefix_complete(self, k: int) -> bool:
        return k <= self._contiguous

    def poll(self) -> Optional[BootstopCheck]:
        """Evaluate any newly completed checkpoints; return a stop verdict.

        Checkpoints strictly below ``n_requested`` are eligible (at
        ``k == n_requested`` there is nothing left to cancel).  Returns
        the converged :class:`BootstopCheck` once, on the poll that
        decides to stop; ``None`` otherwise.
        """
        if self.stopped_at is not None:
            return None
        while (self._next_checkpoint < self.n_requested
               and self._prefix_complete(self._next_checkpoint)):
            k = self._next_checkpoint
            self._next_checkpoint += self.config.check_every
            ordered = [self._splits[r] for r in range(k)]
            check = evaluate_convergence(ordered, self.seed, self.config)
            self.last_check = check
            if check.converged:
                self.stopped_at = k
                return check
        return None
