"""Per-worker-group WAL shards with a deterministic merge-replay.

The single-journal design funnels every worker's result payload through
one master-side file handle — exactly the serial bottleneck in front of
parallel workers that RAxML-Cell's offload pipeline exists to remove
(PAPER.md).  This module shards the write path: each worker group
appends its ``replicate_done`` payloads to its *own* CRC-hardened WAL
shard (the record format of :mod:`repro.cluster.checkpoint`, one JSON
line + CRC32), while the master keeps run-level bookkeeping in a
``meta`` shard.  No lock, no funnel: concurrent appenders never share a
file position because a shard has exactly one writer group, and
within a group ``O_APPEND`` + single-``write`` appends keep records
whole across processes.

Layout (DESIGN.md §15) — the *manifest* lives at the journal path
itself, so every existing path-shaped API (resume, status, digests)
works unchanged::

    run.jsonl            <- manifest: one JSON object, not JSONL
    run.jsonl.d/
        meta.g0.jsonl        <- master shard: run/task lifecycle events
        shard0.g0.jsonl      <- worker group 0: replicate_done records
        shard1.g0.jsonl
        snapshot.g1.jsonl    <- compaction output (generation 1+)

Merge-replay total order: records sort by

    (event_rank, task_key, attempt, event, shard_index, line_seq)

— a pure function of record *content* and shard placement, never wall
clock, so two interleavings of the same logical run replay to the same
:class:`~repro.cluster.checkpoint.JournalState` (and resume stays
bit-identical: result payloads are first-occurrence-wins by
``(kind, replicate)``, and duplicates are bit-identical by
construction).

Snapshot compaction rotates generations: replay the manifest, write the
state's durable essence to ``snapshot.g{n+1}.jsonl`` via
:func:`~repro.cluster.checkpoint.atomic_write`, then commit by
atomically replacing the manifest (pointing at the snapshot and fresh,
empty live shards).  A crash before the manifest replace leaves the old
generation fully intact (the half-built snapshot is an ignored orphan);
a crash after it leaves only unreferenced old-generation files.  Replay
cost after compaction is O(live tasks), not O(history).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, List, Optional, Tuple

from ..chaos import injector as _chaos
from ..chaos.plan import CLUSTER_SHARD_TORN
from .checkpoint import (
    APPEND_RETRIES,
    APPEND_RETRY_SLEEP_S,
    JournalState,
    JournalWriteError,
    RunJournal,
    _repair_torn_tail,
    apply_bootstop_eviction,
    atomic_write,
    compaction_lines,
    decode_record,
    encode_record,
    fold_record,
)

__all__ = [
    "MANIFEST_FORMAT",
    "ShardWriter",
    "ShardedJournal",
    "is_manifest",
    "load_manifest",
    "replay_sharded",
    "compact_sharded",
]

MANIFEST_FORMAT = "repro-cluster-shard-manifest"
MANIFEST_VERSION = 1

#: Total live-shard records above which ``ShardedJournal`` compacts at
#: its safe points (resume-open and close).
DEFAULT_COMPACT_THRESHOLD = 4096

#: Merge rank: frame events sort around the task-keyed body so the
#: merged event stream always opens with the run header and closes with
#: the terminal record, matching single-file journal shape.
_EVENT_RANK = {
    "run_started": 0,
    "run_resumed": 1,
    "run_progress": 3,
    "bootstop_converged": 3,
    "run_finished": 4,
}


def _merge_key(record: dict, shard_index: int, seq: int) -> tuple:
    """Total order for the sharded merge — content, never wall clock."""
    event = record.get("event", "")
    return (
        _EVENT_RANK.get(event, 2),
        str(record.get("task", "")),
        int(record.get("attempt", 0) or 0),
        event,
        shard_index,
        seq,
    )


def _shard_dir(path: str) -> str:
    return os.fspath(path) + ".d"


def _meta_name(generation: int) -> str:
    return f"meta.g{generation}.jsonl"


def _shard_name(group: int, generation: int) -> str:
    return f"shard{group}.g{generation}.jsonl"


def _snapshot_name(generation: int) -> str:
    return f"snapshot.g{generation}.jsonl"


def is_manifest(path: str) -> bool:
    """True when *path* holds a shard manifest instead of a JSONL journal.

    A manifest is a single small JSON object carrying the
    ``"format"`` discriminator; a journal's first line is a journal
    record (``"event"`` key) and an empty or missing file is neither.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(4096)
    except OSError:
        return False
    first = head.split(b"\n", 1)[0].strip()
    if not first.startswith(b"{"):
        return False
    try:
        obj = json.loads(first.decode("utf-8", errors="replace"))
    except ValueError:
        return False
    return isinstance(obj, dict) and obj.get("format") == MANIFEST_FORMAT


def load_manifest(path: str) -> dict:
    """Parse and validate the shard manifest at *path*."""
    with open(path) as fh:
        manifest = json.loads(fh.readline())
    if not isinstance(manifest, dict) \
            or manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"not a shard manifest: {path}")
    if int(manifest.get("version", 0)) > MANIFEST_VERSION:
        raise ValueError(
            f"shard manifest version {manifest['version']} is newer than "
            f"this reader (max {MANIFEST_VERSION}): {path}"
        )
    return manifest


def _write_manifest(path: str, manifest: dict) -> None:
    atomic_write(path, json.dumps(manifest) + "\n")


def _build_manifest(n_shards: int, generation: int, compactions: int,
                    snapshot: Optional[str]) -> dict:
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "n_shards": int(n_shards),
        "generation": int(generation),
        "compactions": int(compactions),
        "snapshot": snapshot,
        # meta first: shard_index 0 is the master's lifecycle shard,
        # 1..n are the worker groups — the index doubles as the merge
        # tiebreaker, so this order is part of the replay contract.
        "shards": [_meta_name(generation)] + [
            _shard_name(g, generation) for g in range(int(n_shards))
        ],
    }


class ShardWriter:
    """Lock-free appender for one WAL shard.

    Opens the shard with ``O_APPEND`` and emits each record as one
    ``os.write`` of one encoded line, so concurrent writers (several
    workers mapped to the same group, or a worker racing the master's
    liveness sweep) interleave whole records, never bytes.  Safe to
    construct inside a forked worker — it holds its own fd.

    The ``cluster.shard_torn`` chaos site models the writer dying
    mid-append: half the record reaches the disk, then
    :class:`~repro.chaos.injector.InjectedCrash` propagates (workers
    turn it into an exit, like a real death).  Transient ``OSError``
    retries mirror :class:`~repro.cluster.checkpoint.RunJournal`.
    """

    def __init__(self, path: str, group: int,
                 clock: Optional[Callable[[], float]] = None):
        self.path = os.fspath(path)
        self.group = int(group)
        self._clock = clock if clock is not None else time.time
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )

    def append(self, event: str, **fields) -> dict:
        record = {"event": event, "time": self._clock(),
                  "group": self.group, **fields}
        data = (encode_record(record) + "\n").encode()
        if _chaos._ACTIVE is not None and _chaos.fire(
            CLUSTER_SHARD_TORN, key=self._chaos_token(event, fields)
        ):
            os.write(self._fd, data[: max(1, len(data) // 2)])
            raise _chaos.InjectedCrash(
                f"shard append torn mid-write during {event!r} "
                f"(group {self.group})"
            )
        last_error: Optional[OSError] = None
        for attempt in range(APPEND_RETRIES):
            try:
                os.write(self._fd, data)
                return record
            except OSError as exc:
                last_error = exc
                time.sleep(APPEND_RETRY_SLEEP_S * (attempt + 1))
        raise JournalWriteError(
            f"shard append failed after {APPEND_RETRIES} attempts "
            f"({event!r}, group {self.group}): {last_error}"
        ) from last_error

    @staticmethod
    def _chaos_token(event: str, fields: dict) -> str:
        # Keyed on logical record identity (task/attempt/replicate), so
        # the injection schedule is independent of worker count and
        # dispatch order — the campaign determinism contract.
        token = f"{event}:{fields.get('task', '')}:{fields.get('attempt', '')}"
        payload = fields.get("payload")
        if isinstance(payload, dict):
            token += f":{payload.get('kind', '')}:{payload.get('replicate', '')}"
        return token

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedJournal:
    """Master-side facade over a shard manifest.

    Quacks like :class:`~repro.cluster.checkpoint.RunJournal` for the
    master's run-level events (``append``/``close``/``events``), which
    land in the ``meta`` shard, and additionally hands out per-group
    shard paths for the workers' own :class:`ShardWriter` instances.

    Compaction runs only at *safe points* — opening for append (resume:
    no workers yet) and :meth:`close` (workers gone) — when the live
    record count exceeds ``compact_threshold``; live shard files are
    never rotated under an active writer's fd.
    """

    def __init__(
        self,
        path: str,
        n_shards: int = 2,
        append: bool = False,
        clock: Optional[Callable[[], float]] = None,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ):
        self.path = os.fspath(path)
        self.dir = _shard_dir(self.path)
        self.compact_threshold = int(compact_threshold)
        self._clock = clock
        if append:
            manifest = load_manifest(self.path)
            for name in manifest["shards"]:
                _repair_torn_tail(os.path.join(self.dir, name))
            if self.live_record_count() > self.compact_threshold:
                compact_sharded(self.path)
                manifest = load_manifest(self.path)
        else:
            if int(n_shards) < 1:
                raise ValueError(f"n_shards must be >= 1: {n_shards}")
            os.makedirs(self.dir, exist_ok=True)
            manifest = _build_manifest(
                n_shards=n_shards, generation=0, compactions=0, snapshot=None
            )
            # Empty live shards exist from birth so replay never has to
            # guess whether a missing file is pre-creation or lost.
            for name in manifest["shards"]:
                open(os.path.join(self.dir, name), "a").close()
            _write_manifest(self.path, manifest)
        self.n_shards = int(manifest["n_shards"])
        self.generation = int(manifest["generation"])
        self.compactions = int(manifest["compactions"])
        self._meta = RunJournal(
            os.path.join(self.dir, _meta_name(self.generation)),
            append=True, clock=clock,
        )

    @property
    def events(self) -> List[dict]:
        return self._meta.events

    def append(self, event: str, **fields) -> dict:
        return self._meta.append(event, **fields)

    def shard_path(self, group: int) -> str:
        """The live WAL shard for worker group *group* (0-based)."""
        if not 0 <= int(group) < self.n_shards:
            raise ValueError(
                f"group {group} out of range for {self.n_shards} shards"
            )
        return os.path.join(self.dir, _shard_name(int(group), self.generation))

    def live_record_count(self) -> int:
        """Total lines across the current generation's live shards."""
        manifest = load_manifest(self.path)
        total = 0
        for name in manifest["shards"]:
            total += _count_lines(os.path.join(self.dir, name))
        return total

    def close(self) -> None:
        self._meta.close()
        if self.live_record_count() > self.compact_threshold:
            compact_sharded(self.path)
            manifest = load_manifest(self.path)
            self.generation = int(manifest["generation"])
            self.compactions = int(manifest["compactions"])

    def __enter__(self) -> "ShardedJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _count_lines(path: str) -> int:
    try:
        with open(path, "rb") as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


def _read_records(path: str, name: str, state: JournalState
                  ) -> List[Tuple[int, dict]]:
    """Decode one shard's lines; corrupt lines are counted, not trusted."""
    records: List[Tuple[int, dict]] = []
    try:
        fh = open(path)
    except FileNotFoundError:
        return records
    with fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append((line_no, decode_record(line)))
            except ValueError as exc:
                state._skip(f"{name}:{line_no}", str(exc))
    return records


def replay_sharded(path: str) -> JournalState:
    """Merge-replay a shard manifest into a ``JournalState``.

    Snapshot records fold first in file order (they are already the
    compacted essence of a previous generation); live-shard records then
    fold in the :func:`_merge_key` total order, which depends only on
    record content and shard placement — replaying the same logical run
    yields the same state regardless of how workers interleaved their
    appends.  A listed-but-missing shard file reads as empty (a fresh
    post-compaction generation whose group never wrote).
    """
    manifest = load_manifest(path)
    directory = _shard_dir(path)
    state = JournalState()

    snapshot = manifest.get("snapshot")
    snapshot_records = 0
    if snapshot:
        for line_no, record in _read_records(
            os.path.join(directory, snapshot), snapshot, state
        ):
            fold_record(state, record, f"{snapshot}:{line_no}")
            snapshot_records += 1

    counts = {}
    merged: List[Tuple[tuple, dict, str, int]] = []
    for shard_index, name in enumerate(manifest["shards"]):
        records = _read_records(os.path.join(directory, name), name, state)
        counts[name] = len(records)
        for seq, record in records:
            merged.append(
                (_merge_key(record, shard_index, seq), record, name, seq)
            )
    merged.sort(key=lambda item: item[0])
    for _, record, name, seq in merged:
        fold_record(state, record, f"{name}:{seq}")

    apply_bootstop_eviction(state)
    state.shards = {
        "n_shards": int(manifest["n_shards"]),
        "generation": int(manifest["generation"]),
        "compactions": int(manifest["compactions"]),
        "snapshot": snapshot,
        "snapshot_records": snapshot_records,
        "records": counts,
    }
    return state


def compact_sharded(path: str) -> JournalState:
    """Snapshot-compact a sharded journal, rotating its generation.

    Replays the manifest, writes the state's durable essence to the
    next generation's snapshot file, then commits by atomically
    replacing the manifest; old-generation files are unlinked last,
    best-effort (an interrupted cleanup leaves orphans, never damage).
    Must only run at safe points — no live shard writers.  Returns the
    replayed state the snapshot was derived from.
    """
    old = load_manifest(path)
    directory = _shard_dir(path)
    state = replay_sharded(path)

    generation = int(old["generation"]) + 1
    snapshot = _snapshot_name(generation)
    lines = compaction_lines(state)
    atomic_write(os.path.join(directory, snapshot),
                 "".join(line + "\n" for line in lines))

    manifest = _build_manifest(
        n_shards=old["n_shards"], generation=generation,
        compactions=int(old["compactions"]) + 1, snapshot=snapshot,
    )
    _write_manifest(path, manifest)  # <- the commit point

    stale = list(old["shards"])
    if old.get("snapshot"):
        stale.append(old["snapshot"])
    for name in stale:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            pass
    return state
