"""Streaming result aggregation: best tree, supports, consensus.

Results land in arbitrary order (workers race), but the aggregate is
order-independent: the running best tree uses a deterministic tie-break
(higher likelihood, then lower replicate - the serial ``max`` picks the
first maximal element, i.e. the lowest replicate), and bipartition
counts are commutative.  Partial results are therefore servable at any
time: ``supports()`` and ``consensus()`` are valid over whatever subset
of replicates has landed so far, and converge to the exact serial
values (:func:`repro.phylo.inference.support_values`) once every
replicate is in.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..phylo.inference import AnalysisResult, InferenceResult, assemble_analysis
from ..phylo.tree import Tree
from .jobs import validate_payload

__all__ = [
    "StreamingAggregator",
    "consensus_newick",
    "merge_perf_counters",
]


def merge_perf_counters(counter_dicts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-task engine counters (PR 1's cache/arena statistics)."""
    totals: Dict[str, int] = {}
    for counters in counter_dicts:
        for name, value in (counters or {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def consensus_newick(taxa: Iterable[str],
                     splits: Iterable[FrozenSet[str]]) -> str:
    """Render compatible splits as a Newick consensus tree.

    *splits* use the canonical form of :meth:`Tree.bipartitions` (the
    side not containing the lexicographically smallest taxon).
    Majority-rule splits are pairwise compatible by construction, so
    they nest: any two are disjoint or one contains the other.
    """
    leaves = sorted(set(taxa))
    clusters = [frozenset(s) for s in splits]

    def render(members: FrozenSet[str], inner: List[FrozenSet[str]]) -> str:
        maximal = [c for c in inner if not any(c < d for d in inner)]
        parts: List[Tuple[str, str]] = []  # (sort key, rendered)
        covered: set = set()
        for cluster in maximal:
            nested = [d for d in inner if d < cluster]
            parts.append((min(cluster), render(cluster, nested)))
            covered |= cluster
        for leaf in members - covered:
            parts.append((leaf, leaf))
        rendered = ",".join(text for _, text in sorted(parts))
        return f"({rendered})"

    return render(frozenset(leaves), clusters) + ";"


class StreamingAggregator:
    """Incremental best-tree tracking and bootstrap consensus.

    ``ingest`` is idempotent per ``(kind, replicate)`` - retried tasks
    and resumed journals may deliver a replicate more than once, always
    with an identical payload.
    """

    def __init__(self):
        self._inferences: Dict[int, dict] = {}
        self._bootstraps: Dict[int, dict] = {}
        self._split_counts: Counter = Counter()
        self.best: Optional[dict] = None

    # -- ingestion ----------------------------------------------------------

    def ingest(self, payload: dict) -> bool:
        """Fold one replicate result in; returns False for duplicates.

        Payloads are shape-checked first (they crossed a process
        boundary and possibly a disk round trip); a malformed payload —
        including a Newick string that fails to parse — raises
        ``ValueError`` with context instead of corrupting the running
        consensus counts.  Journal replay filters such records out
        before they reach here (:func:`repro.cluster.checkpoint.replay`
        counts them as ``corrupt_records``).
        """
        try:
            validate_payload(payload)
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed result payload: {exc}") from exc
        replicate = payload["replicate"]
        if payload.get("is_bootstrap"):
            if replicate in self._bootstraps:
                return False
            try:
                tree = Tree.from_newick(payload["newick"])
            except Exception as exc:
                raise ValueError(
                    f"malformed result payload: unparseable newick for "
                    f"bootstrap replicate {replicate}: {exc}"
                ) from exc
            self._bootstraps[replicate] = payload
            self._split_counts.update(tree.bipartitions())
        else:
            if replicate in self._inferences:
                return False
            self._inferences[replicate] = payload
            if self.best is None or (
                payload["log_likelihood"], -replicate
            ) > (self.best["log_likelihood"], -self.best["replicate"]):
                self.best = payload
        return True

    def truncate_bootstraps(self, stop_at: int) -> int:
        """Drop bootstrap replicates ``>= stop_at`` (autoMRE bootstop).

        When the bootstopping policy halts a run at prefix ``[0, k)``,
        replicates past ``k`` that raced ahead of the decision must be
        excluded so the final aggregate is a pure function of the stop
        point, not of worker timing.  Split counts are decremented
        exactly; returns the number of replicates removed.
        """
        extra = [r for r in self._bootstraps if r >= stop_at]
        for replicate in extra:
            tree = Tree.from_newick(self._bootstraps.pop(replicate)["newick"])
            self._split_counts.subtract(tree.bipartitions())
        # Counter.subtract keeps zero entries; purge them so iteration
        # over _split_counts never sees phantom splits.
        for split in [s for s, c in self._split_counts.items() if c <= 0]:
            del self._split_counts[split]
        return len(extra)

    # -- live views ---------------------------------------------------------

    @property
    def n_inferences(self) -> int:
        return len(self._inferences)

    @property
    def n_bootstraps(self) -> int:
        return len(self._bootstraps)

    def supports(self) -> Dict[FrozenSet[str], float]:
        """Bootstrap support for the *current* best tree's splits.

        Exactly :func:`repro.phylo.inference.support_values` over the
        replicates seen so far: the same integer hit counts divided by
        the same replicate count gives identical floats.
        """
        if self.best is None:
            return {}
        best_tree = Tree.from_newick(self.best["newick"])
        n = len(self._bootstraps)
        return {
            split: (self._split_counts.get(split, 0) / n) if n else 0.0
            for split in best_tree.bipartitions()
        }

    def consensus(self, threshold: float = 0.5
                  ) -> Tuple[Dict[FrozenSet[str], float], Optional[str]]:
        """Majority-rule consensus over the bootstrap replicates so far.

        Returns ``(split -> support, newick)``; the tree is ``None``
        until at least one bootstrap has landed.  The default strict
        majority (> 1/2) guarantees the splits are compatible.
        """
        n = len(self._bootstraps)
        if not n:
            return {}, None
        majority = {
            split: count / n
            for split, count in self._split_counts.items()
            if count / n > threshold
        }
        taxa = Tree.from_newick(
            next(iter(self._bootstraps.values()))["newick"]
        ).tip_names()
        return majority, consensus_newick(taxa, majority)

    # -- final assembly -----------------------------------------------------

    def payloads(self) -> Dict[Tuple[str, int], dict]:
        merged: Dict[Tuple[str, int], dict] = {}
        for r, p in self._inferences.items():
            merged[("inference", r)] = p
        for r, p in self._bootstraps.items():
            merged[("bootstrap", r)] = p
        return merged

    def analysis(self) -> AnalysisResult:
        """The exact serial :class:`AnalysisResult` from the payloads.

        Replicate-ordered assembly through
        :func:`~repro.phylo.inference.assemble_analysis` guarantees the
        same best-tie-break and the same support floats as
        ``run_full_analysis`` on one core.
        """
        inferences = [
            _to_result(self._inferences[r]) for r in sorted(self._inferences)
        ]
        bootstraps = [
            _to_result(self._bootstraps[r]) for r in sorted(self._bootstraps)
        ]
        return assemble_analysis(inferences, bootstraps)

    def perf_totals(self) -> Dict[str, int]:
        return merge_perf_counters(
            p.get("perf") or {} for p in self.payloads().values()
        )


def _to_result(payload: dict) -> InferenceResult:
    return InferenceResult(
        newick=payload["newick"],
        log_likelihood=payload["log_likelihood"],
        search=None,
        newview_calls=payload.get("newview_calls", 0),
        makenewz_calls=payload.get("makenewz_calls", 0),
        evaluate_calls=payload.get("evaluate_calls", 0),
        is_bootstrap=bool(payload.get("is_bootstrap")),
        replicate=payload["replicate"],
    )
