"""Fault-tolerant master-worker job orchestration (paper section 3.1).

The paper's outer parallel layer is an embarrassingly parallel MPI
master-worker scheme: a master rank farms independent tree searches and
bootstrap replicates out to worker ranks, and MGPS re-grains the work
dynamically as loads shift.  :mod:`repro.sched` *simulates* that layer
on the modelled Cell hardware; this package is its production
counterpart on real host cores:

* :mod:`~repro.cluster.jobs` - declarative job specs expanded into an
  idempotent task DAG (tasks derive deterministically from
  ``(seed, kind, replicate)``, exactly like
  :class:`repro.phylo.parallel.TaskSpec`);
* :mod:`~repro.cluster.queue` - a multiprocessing work queue with
  worker heartbeats, per-task timeouts, bounded retry with backoff and
  dead-worker requeue;
* :mod:`~repro.cluster.checkpoint` - an append-only JSONL run journal
  with exact (bit-identical) checkpoint/resume;
* :mod:`~repro.cluster.shards` - per-worker-group WAL shards behind a
  manifest, with a deterministic merge-replay and generation-rotating
  snapshot compaction (replay cost O(live tasks), not O(history));
* :mod:`~repro.cluster.scheduler` - the MGPS-inspired multigrain
  dispatch policy (coarse batches while work is plentiful, split to
  fine grain as workers go idle);
* :mod:`~repro.cluster.aggregate` - streaming best-tree / consensus /
  support aggregation so partial results are servable at any time;
* :mod:`~repro.cluster.bootstop` - the autoMRE-style bootstopping
  policy: deterministic support-convergence checks over the contiguous
  replicate prefix that stop the bootstrap DAG early, journalled so
  resume stays bit-identical;
* :mod:`~repro.cluster.runner` - the high-level ``run`` / ``resume`` /
  ``status`` entry points used by the CLI.
"""

from .aggregate import StreamingAggregator, consensus_newick, merge_perf_counters
from .cancel import REASON_DEADLINE, REASON_DRAIN, CancelToken, TaskCancelled
from .bootstop import (
    BootstopCheck,
    BootstopConfig,
    BootstopController,
    evaluate_convergence,
)
from .checkpoint import JournalState, RunJournal, compact_journal, replay
from .jobs import (
    ClusterTask,
    JobSpec,
    PendingTask,
    TaskGraph,
    expand_job,
    home_group,
)
from .queue import ClusterConfig, ClusterQueue, TaskExecutionError, WorkerPlans
from .runner import job_status, resume_job, run_job
from .scheduler import MultigrainScheduler
from .shards import (
    ShardedJournal,
    ShardWriter,
    compact_sharded,
    is_manifest,
    replay_sharded,
)

__all__ = [
    "CancelToken",
    "TaskCancelled",
    "REASON_DEADLINE",
    "REASON_DRAIN",
    "BootstopCheck",
    "BootstopConfig",
    "BootstopController",
    "evaluate_convergence",
    "StreamingAggregator",
    "consensus_newick",
    "merge_perf_counters",
    "JournalState",
    "RunJournal",
    "compact_journal",
    "replay",
    "ShardedJournal",
    "ShardWriter",
    "compact_sharded",
    "is_manifest",
    "replay_sharded",
    "ClusterTask",
    "JobSpec",
    "PendingTask",
    "TaskGraph",
    "expand_job",
    "home_group",
    "ClusterConfig",
    "ClusterQueue",
    "TaskExecutionError",
    "WorkerPlans",
    "job_status",
    "resume_job",
    "run_job",
    "MultigrainScheduler",
]
