"""Cooperative cancellation: deadlines and drain for cluster runs.

RAxML-Cell's offload discipline is that no processor may be held
hostage by a slow peer; the service-level analogue is that no job may
hold workers past its deadline and no SIGTERM may wait forever on a
wedged replicate.  This module is the shared vocabulary: a
:class:`CancelToken` carries an optional absolute deadline plus an
explicit cancel flag, and every layer of a run — master dispatch loop,
forked worker, hill-climbing search, likelihood engine — polls it at
*safe points* and unwinds with a typed :class:`TaskCancelled`.

Design notes:

* Deadlines are **absolute** ``time.monotonic()`` instants.  On Linux
  the monotonic clock is shared across ``fork()``, so the master can
  hand the raw float to each worker and both sides agree on expiry
  without any message traffic.
* Cancellation is **cooperative**: a check never interrupts a kernel
  mid-operation, so an unwound replicate leaves no partial state.  A
  replicate that raises :class:`TaskCancelled` is *discarded* — only
  fully streamed replicates enter the journal, which is what keeps
  post-deadline salvage and post-drain resume bit-identical.
* The token is deliberately duck-typed: callers in ``repro.phylo``
  accept any object with ``check()`` so the phylo layer keeps zero
  imports from the cluster layer.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = [
    "CancelToken",
    "TaskCancelled",
    "REASON_DEADLINE",
    "REASON_DRAIN",
]

#: The job's ``deadline_s`` budget ran out (salvage what finished).
REASON_DEADLINE = "deadline"
#: The service is draining (checkpoint and unwind; resume later).
REASON_DRAIN = "drain"


class TaskCancelled(RuntimeError):
    """A cooperative cancellation point fired.

    ``reason`` is one of the ``REASON_*`` constants (or a caller-chosen
    string); it decides the unwind policy upstream — ``deadline``
    finalizes a degraded result, ``drain`` leaves the journal open for
    a bit-identical resume.
    """

    def __init__(self, reason: str, message: Optional[str] = None):
        self.reason = reason
        super().__init__(message or f"task cancelled ({reason})")


class CancelToken:
    """Deadline + explicit-cancel flag, polled at safe points.

    The token is cheap to check (two attribute reads and at most one
    clock call) so it can sit inside per-candidate search loops.  It is
    shared between the serving event loop and the executor thread that
    owns a cluster run; plain attribute assignment is atomic under the
    GIL, which is all the synchronisation the two readers need.
    """

    def __init__(self, deadline: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        #: Absolute ``clock()`` instant after which the token trips.
        self.deadline = deadline
        self._clock = clock
        self._reason: Optional[str] = None

    @classmethod
    def with_timeout(cls, seconds: float,
                     clock: Callable[[], float] = time.monotonic
                     ) -> "CancelToken":
        return cls(deadline=clock() + seconds, clock=clock)

    # -- mutation -----------------------------------------------------------

    def cancel(self, reason: str = REASON_DRAIN) -> None:
        """Trip the token explicitly (first reason wins)."""
        if self._reason is None:
            self._reason = reason

    def cap_deadline(self, seconds: float) -> None:
        """Tighten the deadline to at most ``seconds`` from now."""
        candidate = self._clock() + seconds
        if self.deadline is None or candidate < self.deadline:
            self.deadline = candidate

    # -- inspection ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether checking this token can ever trip (cheap gate)."""
        return self.deadline is not None or self._reason is not None

    @property
    def cancelled(self) -> bool:
        return self.reason is not None

    @property
    def reason(self) -> Optional[str]:
        if self._reason is not None:
            return self._reason
        if self.deadline is not None and self._clock() >= self.deadline:
            return REASON_DEADLINE
        return None

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None when no deadline is set)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`TaskCancelled` if the token has tripped."""
        reason = self.reason
        if reason is not None:
            raise TaskCancelled(reason)
