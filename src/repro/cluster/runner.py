"""High-level run / resume / status entry points over the cluster queue.

``run_job`` starts a fresh journalled run, ``resume_job`` replays a
journal and executes only the missing replicates (bit-identical to an
uninterrupted run), and ``job_status`` summarizes a journal for the
``cluster status`` CLI without spawning any workers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.inference import AnalysisResult
from .aggregate import StreamingAggregator
from .bootstop import BootstopController
from .cancel import REASON_DEADLINE, CancelToken, TaskCancelled
from .checkpoint import JournalState, RunJournal, replay
from .jobs import JobSpec, expand_job
from .queue import ClusterConfig, ClusterQueue, ExecutionContext, WorkerPlans
from .shards import ShardedJournal, is_manifest

__all__ = ["run_job", "resume_job", "job_status"]


def _open_journal(journal_path: Optional[str], n_shards: Optional[int],
                  clock, append: bool = False):
    """Pick the journal layout: plain JSONL or a shard manifest.

    A fresh run shards when ``n_shards`` asks for it; a resume follows
    whatever layout the journal on disk already has (the manifest is
    self-describing, so ``n_shards`` is ignored on append).
    """
    if append:
        if is_manifest(journal_path):
            return ShardedJournal(journal_path, append=True, clock=clock)
        return RunJournal(journal_path, append=True, clock=clock)
    if n_shards is not None and n_shards > 0:
        if journal_path is None:
            raise ValueError("sharded journals need a journal_path")
        return ShardedJournal(journal_path, n_shards=n_shards, clock=clock)
    return RunJournal(journal_path, clock=clock)


def _bootstop_controller(spec: JobSpec) -> Optional[BootstopController]:
    if spec.bootstop is None:
        return None
    return BootstopController(spec.bootstop, spec.n_bootstraps, spec.seed)


def _as_patterns(alignment) -> PatternAlignment:
    if isinstance(alignment, PatternAlignment):
        return alignment
    compress = getattr(alignment, "compress", None)
    if compress is not None:
        return compress()
    raise TypeError("expected an alignment or pattern alignment")


def _load_patterns(spec: JobSpec) -> PatternAlignment:
    if spec.alignment_path is None:
        raise ValueError(
            "job spec has no alignment_path; pass the alignment explicitly"
        )
    with open(spec.alignment_path) as fh:
        text = fh.read()
    if spec.aa:
        from ..phylo.protein import ProteinAlignment

        cls = ProteinAlignment
    else:
        cls = Alignment
    if text.lstrip().startswith(">"):
        return cls.from_fasta(text).compress()
    return cls.from_phylip(text).compress()


def _finalize(journal: RunJournal, aggregator: StreamingAggregator,
              degraded: bool = False) -> AnalysisResult:
    analysis = aggregator.analysis()
    extra = {"degraded": True} if degraded else {}
    journal.append(
        "run_finished",
        n_results=len(aggregator.payloads()),
        best_log_likelihood=analysis.best.log_likelihood,
        perf=aggregator.perf_totals(),
        **extra,
    )
    journal.close()
    analysis.degraded = degraded
    return analysis


def _resolve_cancel(spec: JobSpec,
                    cancel: Optional[CancelToken]) -> Optional[CancelToken]:
    """Fold ``spec.deadline_s`` into the caller's token (if any).

    The deadline budget starts *now* — a resumed run gets a fresh
    budget, since the salvageable work is exactly what is left.
    """
    if spec.deadline_s is None:
        return cancel
    token = cancel if cancel is not None else CancelToken()
    token.cap_deadline(spec.deadline_s)
    return token


def _settle(queue: ClusterQueue, journal) -> AnalysisResult:
    """Finalize a (possibly cancelled) queue run.

    * completed → normal ``run_finished``;
    * deadline → degraded ``run_finished`` salvaged from completed
      replicates (typed ``TaskCancelled`` when not even one inference
      finished — there is nothing to salvage);
    * drain/explicit cancel → no ``run_finished`` at all: the journal
      stays open-ended so a later resume completes it bit-identically,
      and the caller sees a typed ``TaskCancelled``.
    """
    reason = queue.cancelled_reason
    if reason is None:
        return _finalize(journal, queue.aggregator)
    if reason == REASON_DEADLINE:
        if queue.aggregator.n_inferences == 0:
            journal.close()
            raise TaskCancelled(
                REASON_DEADLINE,
                "deadline exceeded before any inference completed; "
                "nothing to salvage",
            )
        return _finalize(journal, queue.aggregator, degraded=True)
    journal.close()
    raise TaskCancelled(reason)


def run_job(
    spec: JobSpec,
    alignment=None,
    n_workers: Optional[int] = None,
    journal_path: Optional[str] = None,
    cluster: Optional[ClusterConfig] = None,
    plans: Optional[WorkerPlans] = None,
    clock=None,
    n_shards: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
) -> AnalysisResult:
    """Execute a job from scratch, journalling to *journal_path*.

    The alignment comes from *alignment* (any alignment object) or,
    when omitted, from ``spec.alignment_path``.  Results match
    :func:`repro.phylo.inference.run_full_analysis` bit for bit.
    ``clock`` stamps journal records (chaos campaigns pass a
    deterministic counter for byte-identical journals).  ``n_shards``
    switches the journal to per-worker-group WAL shards
    (:mod:`repro.cluster.shards`): workers persist their own results
    instead of funnelling them through the master's file handle.
    ``cancel`` is an external cancellation token (the serve layer's
    drain); ``spec.deadline_s`` is folded into it, and a tripped token
    either salvages a degraded result (deadline) or raises a typed
    ``TaskCancelled`` leaving the journal resumable (drain).
    """
    patterns = (_as_patterns(alignment) if alignment is not None
                else _load_patterns(spec))
    cluster = _with_workers(cluster, n_workers)
    journal = _open_journal(journal_path, n_shards, clock)
    header_extra = (
        {"n_shards": journal.n_shards} if isinstance(journal, ShardedJournal)
        else {}
    )
    journal.append("run_started", spec=spec.to_json(),
                   n_workers=cluster.n_workers, **header_extra)
    queue = ClusterQueue(
        patterns, ctx=ExecutionContext.from_spec(spec), cluster=cluster,
        journal=journal, plans=plans, bootstop=_bootstop_controller(spec),
    )
    try:
        queue.run(expand_job(spec), cancel=_resolve_cancel(spec, cancel))
    except BaseException:
        journal.close()
        raise
    return _settle(queue, journal)


def resume_job(
    journal_path: str,
    alignment=None,
    n_workers: Optional[int] = None,
    cluster: Optional[ClusterConfig] = None,
    plans: Optional[WorkerPlans] = None,
    clock=None,
    cancel: Optional[CancelToken] = None,
) -> AnalysisResult:
    """Resume an interrupted run from its journal.

    Finished replicates are taken verbatim from the journal (floats
    round-trip exactly through JSON); only the remainder is executed.
    The final trees, likelihoods, and supports are bit-identical to an
    uninterrupted run.  The journal layout follows whatever is on disk:
    a shard manifest resumes sharded (merge-replay, per-group WALs), a
    plain JSONL file resumes single-file.
    """
    state = replay(journal_path)
    if state.spec is None:
        raise ValueError(f"{journal_path}: no run_started header to resume")
    spec = JobSpec.from_json(state.spec)
    bootstop = _bootstop_controller(spec)
    if state.bootstop is not None:
        # A journalled autoMRE stop decision is final: truncate the
        # resume DAG to the stopped prefix (replay already evicted any
        # replicate past it) instead of re-deriving the decision.
        stop_at = int(state.bootstop["stop_at"])
        from dataclasses import replace as _replace

        spec_for_tasks = _replace(spec, n_bootstraps=stop_at)
        if bootstop is not None:
            bootstop.restore(stop_at)
    else:
        spec_for_tasks = spec
    tasks = expand_job(spec_for_tasks, state.done_inferences,
                       state.done_bootstraps)

    if not tasks:
        aggregator = StreamingAggregator()
        for payload in state.payloads.values():
            aggregator.ingest(payload)
        journal = _open_journal(journal_path, None, clock, append=True)
        journal.append("run_resumed", remaining=0)
        return _finalize(journal, aggregator)

    patterns = (_as_patterns(alignment) if alignment is not None
                else _load_patterns(spec))
    cluster = _with_workers(cluster, n_workers)
    journal = _open_journal(journal_path, None, clock, append=True)
    journal.append("run_resumed", remaining=sum(t.grain for t in tasks),
                   n_workers=cluster.n_workers)
    queue = ClusterQueue(
        patterns, ctx=ExecutionContext.from_spec(spec), cluster=cluster,
        journal=journal, plans=plans, bootstop=bootstop,
    )
    try:
        queue.run(tasks, already=dict(state.payloads),
                  cancel=_resolve_cancel(spec, cancel))
    except BaseException:
        journal.close()
        raise
    return _settle(queue, journal)


def job_status(journal_path: str) -> Dict[str, object]:
    """Summarize a journal: progress, faults, streaming partials.

    With autoMRE bootstopping the replicate count is not fixed up
    front: ``n_bootstraps_total`` reports the *effective* target (the
    journalled stop point once the run converged, the requested budget
    before that), and ``bootstop`` carries the policy state — requested
    budget, stop point, and the convergence metric of the decision.
    """
    state = replay(journal_path)
    aggregator = StreamingAggregator()
    for payload in state.payloads.values():
        aggregator.ingest(payload)
    spec = JobSpec.from_json(state.spec) if state.spec else None
    consensus_supports, consensus_tree = aggregator.consensus()
    bootstop: Optional[Dict[str, object]] = None
    n_bootstraps_total = spec.n_bootstraps if spec else None
    if spec is not None and spec.bootstop is not None:
        bootstop = {
            "enabled": True,
            "requested": spec.n_bootstraps,
            "check_every": spec.bootstop.check_every,
            "threshold": spec.bootstop.threshold,
            "stop_at": None,
            "metric": None,
            "pass_fraction": None,
        }
        if state.bootstop is not None:
            bootstop["stop_at"] = int(state.bootstop["stop_at"])
            bootstop["metric"] = state.bootstop.get("metric")
            bootstop["pass_fraction"] = state.bootstop.get("pass_fraction")
            n_bootstraps_total = int(state.bootstop["stop_at"])
    return {
        "spec": spec,
        "state": state,
        "finished": state.finished,
        "n_inferences_done": aggregator.n_inferences,
        "n_bootstraps_done": aggregator.n_bootstraps,
        "n_inferences_total": spec.n_inferences if spec else None,
        "n_bootstraps_total": n_bootstraps_total,
        "bootstop": bootstop,
        "best": aggregator.best,
        "supports": aggregator.supports(),
        "consensus_supports": consensus_supports,
        "consensus_newick": consensus_tree,
        "retries": state.retries,
        "worker_deaths": state.worker_deaths,
        "steals": state.steals,
        "shards": state.shards,
        "degraded": state.degraded,
        "deadline_exceeded": state.deadline_exceeded,
        "perf": state.perf_totals(),
    }


def _with_workers(cluster: Optional[ClusterConfig],
                  n_workers: Optional[int]) -> ClusterConfig:
    cluster = cluster or ClusterConfig()
    if n_workers is not None and n_workers != cluster.n_workers:
        from dataclasses import replace

        cluster = replace(cluster, n_workers=n_workers)
    return cluster
