"""Job specifications and their expansion into an idempotent task DAG.

A *job* is the paper's section-3.1 workload: ``n`` independent
inferences plus ``n`` bootstrap replicates over one alignment.  Each
schedulable *task* covers one or more replicates of one kind; every
replicate's result is a pure function of ``(seed, kind, replicate)`` -
the same derivation as :class:`repro.phylo.parallel.TaskSpec` - so any
task can be re-run (after a crash, a timeout, or a resume) and produce
bit-identical output.  That is what makes the DAG idempotent: task
identity, not execution history, determines results.

Bootstrap tasks may be *coarse* (several replicates per task, the EDTLP
grain) and are split into single-replicate *fine* tasks by the
multigrain scheduler when workers go idle (the LLP grain) - see
:mod:`repro.cluster.scheduler`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple
from zlib import crc32

from ..phylo.search import SearchConfig
from .bootstop import BootstopConfig

__all__ = [
    "JobSpec",
    "ClusterTask",
    "PendingTask",
    "TaskGraph",
    "expand_job",
    "home_group",
    "validate_payload",
    "AGGREGATE_NODE",
]

#: Terminal DAG node: the streaming aggregation barrier every task feeds.
AGGREGATE_NODE = "aggregate/consensus"


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)create a run deterministically.

    The spec is journalled verbatim in the run header, so ``resume``
    can rebuild the exact same task DAG without the original process.
    ``model_name=None`` means the engine default
    (:func:`repro.phylo.inference.default_model_for`); ``alpha=None``
    means the engine's default Gamma rates.  ``bootstop`` activates the
    autoMRE-style early-stop policy (:mod:`repro.cluster.bootstop`):
    ``n_bootstraps`` then becomes the replicate *budget*, and the run
    may journal a ``bootstop_converged`` decision and finish with fewer.
    ``deadline_s`` is a wall-clock budget for the whole run: when it
    expires the master journals ``task_deadline_exceeded``, discards
    in-flight replicates, and finalizes a *degraded* result from the
    completed ones (:mod:`repro.cluster.cancel`).  Like
    ``alignment_path`` it is execution policy, not content — the result
    cache digest ignores it.
    """

    n_inferences: int
    n_bootstraps: int
    seed: int = 0
    batch_size: int = 1
    alignment_path: Optional[str] = None
    aa: bool = False
    model_name: Optional[str] = None
    alpha: Optional[float] = None
    categories: int = 4
    deadline_s: Optional[float] = None
    config: Optional[SearchConfig] = None
    bootstop: Optional[BootstopConfig] = None

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["config"] = asdict(self.config) if self.config else None
        payload["bootstop"] = (
            self.bootstop.to_json() if self.bootstop else None
        )
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JobSpec":
        data = dict(payload)
        config = data.pop("config", None)
        bootstop = data.pop("bootstop", None)
        spec = cls(**data)
        if config is not None:
            object.__setattr__(spec, "config", SearchConfig(**config))
        if bootstop is not None:
            object.__setattr__(
                spec, "bootstop", BootstopConfig.from_json(bootstop)
            )
        return spec


@dataclass(frozen=True)
class ClusterTask:
    """One schedulable unit: >= 1 replicates of one kind."""

    task_id: str
    kind: str  # "inference" | "bootstrap"
    replicates: Tuple[int, ...]
    seed: int

    @property
    def grain(self) -> int:
        return len(self.replicates)

    def split(self) -> List["ClusterTask"]:
        """Fine-grained children, one per replicate (MGPS's LLP step)."""
        if self.grain <= 1:
            return [self]
        return [
            ClusterTask(_task_id(self.kind, (r,)), self.kind, (r,), self.seed)
            for r in self.replicates
        ]

    def keys(self) -> List[Tuple[str, int]]:
        """The result keys this task produces."""
        return [(self.kind, r) for r in self.replicates]


@dataclass
class PendingTask:
    """A task waiting for dispatch (with retry bookkeeping)."""

    task: ClusterTask
    attempt: int = 1
    not_before: float = 0.0  # monotonic clock; retry backoff gate


def _task_id(kind: str, replicates: Tuple[int, ...]) -> str:
    if len(replicates) == 1:
        return f"{kind}/{replicates[0]}"
    return f"{kind}/{replicates[0]}-{replicates[-1]}"


def home_group(task_id: str, n_groups: int) -> int:
    """The worker group that owns *task_id*'s queue in a sharded run.

    A pure hash of the task identity — not of dispatch history — so the
    initial queue partition is identical across runs, resumes, and
    worker counts; only journalled steals move work between groups.
    """
    if n_groups <= 1:
        return 0
    return crc32(task_id.encode()) % n_groups


def _batched(replicates: List[int], batch_size: int) -> Iterable[Tuple[int, ...]]:
    """Group *consecutive* replicates into batches of ``batch_size``.

    Non-consecutive survivors (after a resume excluded arbitrary
    replicates) never share a batch, so a batch id always denotes a
    contiguous range.
    """
    run: List[int] = []
    for r in replicates:
        if run and (r != run[-1] + 1 or len(run) >= batch_size):
            yield tuple(run)
            run = []
        run.append(r)
    if run:
        yield tuple(run)


def validate_payload(payload: object) -> dict:
    """Check one ``replicate_done`` result payload's shape.

    Journal replay and the streaming aggregator both consume payloads
    that crossed a process boundary and a disk write; a corrupted or
    truncated record can parse as JSON yet carry garbage.  Raises
    ``ValueError`` (or ``KeyError`` for a missing field) instead of
    letting the garbage reach consensus counting.  Returns the payload
    for call-through convenience.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload is not an object: {type(payload).__name__}")
    kind = payload.get("kind")
    if kind is not None and kind not in ("inference", "bootstrap"):
        raise ValueError(f"unknown payload kind: {kind!r}")
    replicate = payload["replicate"]
    if not isinstance(replicate, int) or isinstance(replicate, bool) \
            or replicate < 0:
        raise ValueError(f"bad replicate index: {replicate!r}")
    newick = payload["newick"]
    if not isinstance(newick, str) or not newick.rstrip().endswith(";"):
        raise ValueError(f"malformed newick string: {newick!r:.80}")
    lnl = payload["log_likelihood"]
    if isinstance(lnl, bool) or not isinstance(lnl, (int, float)) \
            or lnl != lnl or lnl in (float("inf"), float("-inf")):
        raise ValueError(f"non-finite log likelihood: {lnl!r}")
    return payload


def expand_job(
    spec: JobSpec,
    done_inferences: Optional[Set[int]] = None,
    done_bootstraps: Optional[Set[int]] = None,
) -> List[ClusterTask]:
    """Expand a job into its task list, excluding finished replicates.

    Called with empty ``done_*`` sets this is the initial DAG; called
    with the replicate sets replayed from a journal it is the *resume*
    DAG - the same ids for the same work, which is what makes resuming
    idempotent.
    """
    done_inferences = done_inferences or set()
    done_bootstraps = done_bootstraps or set()
    tasks: List[ClusterTask] = []
    for i in range(spec.n_inferences):
        if i in done_inferences:
            continue
        tasks.append(ClusterTask(_task_id("inference", (i,)), "inference",
                                 (i,), spec.seed))
    remaining = [r for r in range(spec.n_bootstraps) if r not in done_bootstraps]
    for batch in _batched(remaining, max(1, spec.batch_size)):
        tasks.append(ClusterTask(_task_id("bootstrap", batch), "bootstrap",
                                 batch, spec.seed))
    return tasks


@dataclass
class TaskGraph:
    """The job's dependency structure.

    The workload is embarrassingly parallel, so the DAG is flat: every
    task is immediately ready, and all of them feed one terminal
    aggregation node (:data:`AGGREGATE_NODE`) - the streaming consensus
    barrier that :mod:`repro.cluster.aggregate` services incrementally.
    """

    tasks: List[ClusterTask]
    dependencies: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: JobSpec, **done) -> "TaskGraph":
        tasks = expand_job(spec, **done)
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate task ids in expansion: {ids}")
        return cls(tasks=tasks, dependencies={AGGREGATE_NODE: tuple(ids)})

    def ready(self) -> List[ClusterTask]:
        """Tasks with no unmet dependencies (all of them, by design)."""
        blocked = set(self.dependencies)
        return [t for t in self.tasks if t.task_id not in blocked]

    @property
    def n_replicates(self) -> int:
        return sum(t.grain for t in self.tasks)
