"""MGPS-inspired multigrain dispatch policy for the live cluster.

The simulated scheduler (:mod:`repro.sched.mgps`) switches the modelled
SPEs between task-level (EDTLP) and loop-level (LLP) parallelism based
on how much task-level work remains.  The live cluster reuses that
policy and its phase-accounting vocabulary: while at least as many
tasks as workers are outstanding, workers consume *coarse* tasks
(bootstrap batches - the EDTLP grain); when the outstanding-task count
drops below the worker count, remaining batches are split into
single-replicate *fine* tasks so idle workers can help finish the tail
(the LLP grain).

Phases are recorded as :class:`repro.sched.mgps.MGPSPhase` records with
the same mode strings (``"edtlp"`` / ``"llp"``), and summarized with
:func:`repro.sched.mgps.summarize_phases` into the run journal.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..sched.mgps import MGPSPhase
from .jobs import PendingTask

__all__ = ["MultigrainScheduler"]

COARSE = "edtlp"
FINE = "llp"


class MultigrainScheduler:
    """Decides task granularity and accounts for scheduling phases."""

    def __init__(self, n_workers: int):
        self.n_workers = max(1, n_workers)
        self.splits = 0
        self.steals = 0
        self._phases: List[MGPSPhase] = []
        self._mode: Optional[str] = None
        self._phase_started = 0.0
        self._phase_tasks = 0
        self._phase_splits = 0
        self._phase_steals = 0

    def plan(self, pending: List[PendingTask], now: Optional[float] = None
             ) -> List[PendingTask]:
        """Re-grain the pending queue for the current load.

        Mirrors ``simulate_mgps``'s phase-boundary test: outstanding
        tasks >= workers keeps the coarse grain; fewer switches to the
        fine grain by splitting never-attempted batches.  Retried
        batches stay coarse so their attempt accounting (and any
        injected failure plan keyed on the batch id) remains stable.
        """
        return self.plan_groups({0: pending}, now)[0]

    def plan_groups(
        self,
        groups: Dict[int, List[PendingTask]],
        now: Optional[float] = None,
    ) -> Dict[int, List[PendingTask]]:
        """:meth:`plan` over per-shard-group queues.

        The coarse/fine decision is made on the *total* outstanding
        count — granularity is a property of the run, not of one shard —
        and fine-grained children stay in their parent's group, so a
        split never silently migrates work between shards (migration is
        work *stealing*, which the master journals).
        """
        if now is None:
            now = time.monotonic()
        total = sum(len(pending) for pending in groups.values())
        mode = COARSE if total >= self.n_workers else FINE
        if mode == FINE:
            for group, pending in groups.items():
                regrained: List[PendingTask] = []
                for entry in pending:
                    if entry.task.grain > 1 and entry.attempt == 1:
                        for child in entry.task.split():
                            regrained.append(
                                PendingTask(child, 1, entry.not_before)
                            )
                        self.splits += 1
                        self._phase_splits += 1
                    else:
                        regrained.append(entry)
                groups[group] = regrained
        self._enter(mode, now)
        return groups

    def dispatched(self, entry: PendingTask) -> None:
        """Count a task against the current phase."""
        self._phase_tasks += 1

    def stole(self) -> None:
        """Count a cross-group work steal against the current phase."""
        self.steals += 1
        self._phase_steals += 1

    def finish(self, now: Optional[float] = None) -> List[MGPSPhase]:
        """Close the open phase and return the full phase log."""
        if now is None:
            now = time.monotonic()
        self._close(now)
        return list(self._phases)

    @property
    def phases(self) -> List[MGPSPhase]:
        return list(self._phases)

    # -- internals ----------------------------------------------------------

    def _enter(self, mode: str, now: float) -> None:
        if mode == self._mode:
            return
        self._close(now)
        self._mode = mode
        self._phase_started = now
        self._phase_tasks = 0
        self._phase_splits = 0
        self._phase_steals = 0

    def _close(self, now: float) -> None:
        if self._mode is None:
            return
        self._phases.append(
            MGPSPhase(
                mode=self._mode,
                n_tasks=self._phase_tasks,
                duration_s=now - self._phase_started,
                detail={"n_workers": self.n_workers,
                        "splits": self._phase_splits,
                        "steals": self._phase_steals},
            )
        )
        self._mode = None
