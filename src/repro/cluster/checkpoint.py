"""Append-only JSONL run journal with exact checkpoint/resume.

Every scheduling event and every per-replicate result payload is
appended to the journal as one JSON line.  Because each replicate's
result is a pure function of ``(seed, kind, replicate)``, replaying the
journal and re-running only the missing replicates reproduces the
uninterrupted run *bit-identically*: floats survive the JSON round trip
exactly (``repr`` shortest round-trip), and Newick strings are stored
verbatim.

Event vocabulary::

    run_started     {"spec": {...}}
    run_resumed     {"remaining": n}
    task_started    {"task", "attempt", "worker"}
    replicate_done  {"payload": {...}}     # trees, lnl, perf counters
    task_finished   {"task", "attempt", "worker"}
    task_failed     {"task", "attempt", "error", "will_retry"}
    worker_dead     {"worker", "task", "reason"}
    run_finished    {"n_results", "phases", "perf"}
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["RunJournal", "JournalState", "replay"]


class RunJournal:
    """Append-only JSONL sink; ``path=None`` keeps events in memory only.

    The in-memory mode backs ephemeral runs (the
    :func:`repro.phylo.parallel.parallel_analysis` facade) that want
    retry/heartbeat semantics without a durable artifact.
    """

    def __init__(self, path: Optional[str] = None, append: bool = False):
        self.path = path
        self.events: List[dict] = []
        self._fh = None
        if path is not None:
            self._fh = open(path, "a" if append else "w")

    def append(self, event: str, **fields) -> dict:
        record = {"event": event, "time": time.time(), **fields}
        self.events.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """Everything :func:`replay` can reconstruct from a journal."""

    spec: Optional[dict] = None
    #: (kind, replicate) -> result payload (first occurrence wins; a
    #: retried task may journal duplicate replicates, all bit-identical)
    payloads: Dict[Tuple[str, int], dict] = field(default_factory=dict)
    failures: List[dict] = field(default_factory=list)
    worker_deaths: List[dict] = field(default_factory=list)
    tasks_started: int = 0
    tasks_finished: int = 0
    resumes: int = 0
    finished: bool = False
    events: List[dict] = field(default_factory=list)

    @property
    def done_inferences(self) -> Set[int]:
        return {r for (k, r) in self.payloads if k == "inference"}

    @property
    def done_bootstraps(self) -> Set[int]:
        return {r for (k, r) in self.payloads if k == "bootstrap"}

    @property
    def retries(self) -> List[dict]:
        return [f for f in self.failures if f.get("will_retry")]

    def perf_totals(self) -> Dict[str, int]:
        """Sum the per-task engine perf counters across all payloads."""
        totals: Dict[str, int] = {}
        for payload in self.payloads.values():
            for name, value in (payload.get("perf") or {}).items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals


def replay(path: str) -> JournalState:
    """Reconstruct run state from a journal file.

    Tolerates a truncated final line (the process may have died while
    writing), which is exactly the crash case resume exists for.
    """
    state = JournalState()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from a dying process
            state.events.append(record)
            event = record.get("event")
            if event == "run_started":
                state.spec = record["spec"]
            elif event == "run_resumed":
                state.resumes += 1
            elif event == "task_started":
                state.tasks_started += 1
            elif event == "task_finished":
                state.tasks_finished += 1
            elif event == "replicate_done":
                payload = record["payload"]
                key = (payload["kind"], payload["replicate"])
                state.payloads.setdefault(key, payload)
            elif event == "task_failed":
                state.failures.append(record)
            elif event == "worker_dead":
                state.worker_deaths.append(record)
            elif event == "run_finished":
                state.finished = True
    return state
