"""Append-only JSONL run journal with exact checkpoint/resume.

Every scheduling event and every per-replicate result payload is
appended to the journal as one JSON line.  Because each replicate's
result is a pure function of ``(seed, kind, replicate)``, replaying the
journal and re-running only the missing replicates reproduces the
uninterrupted run *bit-identically*: floats survive the JSON round trip
exactly (``repr`` shortest round-trip), and Newick strings are stored
verbatim.

Durability (hardened by the chaos campaign, DESIGN.md §11):

* Every record carries a CRC32 of its own serialization (the ``crc``
  field, computed over the record *without* it).  :func:`replay` skips
  any record that fails to parse, fails its CRC, or carries a malformed
  result payload — anywhere in the file, not just a torn tail — counting
  it in :attr:`JournalState.corrupt_records` with a warning, so resume
  recomputes the lost work instead of trusting a damaged line.
* Opening a journal for append first repairs a torn tail: if the file
  does not end in a newline (the writer died mid-``write``), one is
  added so the torn record stays an isolated corrupt line instead of
  splicing itself onto the first record of the resumed run.
* Appends retry transient ``OSError`` a bounded number of times before
  surfacing the typed :class:`JournalWriteError`.
* :func:`atomic_write` (temp file in the target directory + flush +
  ``fsync`` + ``os.replace`` + directory ``fsync``) backs every
  whole-file artifact (best trees, compacted journals, benchmark
  sections): a crash mid-write leaves the previous version intact, and
  the directory fsync makes the rename itself durable — without it a
  crash right after ``os.replace`` could roll the directory entry back
  to the old file.

Sharded journals (DESIGN.md §15): a run may journal through
per-worker-group WAL shards instead of one file.  The shard layout and
its deterministic merge-replay live in :mod:`repro.cluster.shards`;
:func:`replay` and :func:`compact_journal` transparently dispatch when
*path* is a shard manifest, so every journal consumer (status, resume,
SSE-free digests) reads both layouts through one entry point.

Event vocabulary::

    run_started     {"spec": {...}}
    run_resumed     {"remaining": n}
    task_started    {"task", "attempt", "worker"}
    replicate_done  {"payload": {...}}     # trees, lnl, perf counters
    task_finished   {"task", "attempt", "worker"}
    task_failed     {"task", "attempt", "attempts", "backoff_ms",
                     "error", "will_retry"}
    task_stolen     {"task", "attempt", "from_group", "to_group"}
    worker_dead     {"worker", "task", "reason"}
    bootstop_converged  {"stop_at", "requested", "metric",
                         "pass_fraction", "threshold", "seed", ...}
    task_deadline_exceeded  {"remaining", "n_done"}   # deadline tripped
    run_cancelled   {"reason", "remaining", "n_done"} # e.g. drain
    worker_rss_exceeded {"worker", "task", "rss_mb", "limit_mb"}
    run_finished    {"n_results", "phases", "perf"[, "degraded"]}
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple
from zlib import crc32

from ..chaos import injector as _chaos
from ..chaos.plan import (
    CLUSTER_CHECKPOINT_TORN,
    CLUSTER_JOURNAL_OSERROR,
    CLUSTER_JOURNAL_TORN,
)

__all__ = [
    "JournalWriteError",
    "RunJournal",
    "JournalState",
    "atomic_write",
    "compact_journal",
    "compaction_lines",
    "apply_bootstop_eviction",
    "fold_record",
    "replay",
]

logger = logging.getLogger(__name__)

#: Bounded retry budget for transient append failures.
APPEND_RETRIES = 3
APPEND_RETRY_SLEEP_S = 0.01


class JournalWriteError(RuntimeError):
    """A journal append failed even after its bounded retries."""


def encode_record(record: dict) -> str:
    """One journal line: the record plus a CRC32 over its serialization.

    The CRC is appended as the *last* key, so verification re-serializes
    the parsed record minus ``crc`` — byte-identical to what was hashed,
    because JSON objects round-trip in insertion order.
    """
    body = json.dumps(record)
    return json.dumps({**record, "crc": crc32(body.encode())})


def decode_record(line: str) -> dict:
    """Parse and CRC-verify one journal line.

    Raises ``ValueError`` on malformed JSON, a non-object record, or a
    CRC mismatch.  Records without a ``crc`` field (journals written
    before the CRC hardening) are accepted as-is.
    """
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(f"journal record is not an object: {line[:80]!r}")
    if "crc" in record:
        crc = record.pop("crc")
        body = json.dumps(record)
        if crc32(body.encode()) != crc:
            raise ValueError(
                f"journal record failed its CRC32 check: {line[:80]!r}"
            )
    return record


class RunJournal:
    """Append-only JSONL sink; ``path=None`` keeps events in memory only.

    The in-memory mode backs ephemeral runs (the
    :func:`repro.phylo.parallel.parallel_analysis` facade) that want
    retry/heartbeat semantics without a durable artifact.

    ``clock`` (default ``time.time``) stamps every record; chaos
    campaigns inject a deterministic counter here so two runs of the
    same plan produce byte-identical journals.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        append: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.path = path
        self.events: List[dict] = []
        self._clock = clock if clock is not None else time.time
        self._fh = None
        if path is not None:
            if append:
                _repair_torn_tail(path)
            self._fh = open(path, "a" if append else "w")

    def append(self, event: str, **fields) -> dict:
        record = {"event": event, "time": self._clock(), **fields}
        self.events.append(record)
        if self._fh is not None:
            self._write_line(encode_record(record) + "\n", event)
        return record

    def _write_line(self, line: str, event: str) -> None:
        if _chaos._ACTIVE is not None and _chaos.fire(
            CLUSTER_JOURNAL_TORN, key=event
        ):
            # Model the writer dying mid-write(): half the line reaches
            # the disk, then the process stops.
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            raise _chaos.InjectedCrash(
                f"journal append torn mid-write during {event!r}"
            )
        last_error: Optional[OSError] = None
        for attempt in range(APPEND_RETRIES):
            try:
                if _chaos._ACTIVE is not None and _chaos.fire(
                    CLUSTER_JOURNAL_OSERROR, key=f"{event}:{attempt}"
                ):
                    raise OSError(28, "injected transient write failure")
                self._fh.write(line)
                self._fh.flush()
                return
            except OSError as exc:
                last_error = exc
                time.sleep(APPEND_RETRY_SLEEP_S * (attempt + 1))
        raise JournalWriteError(
            f"journal append failed after {APPEND_RETRIES} attempts "
            f"({event!r}): {last_error}"
        ) from last_error

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _repair_torn_tail(path: str) -> None:
    """Terminate a torn final line before appending to a journal.

    Without this, the resumed run's first record would be appended onto
    the torn fragment, corrupting a *good* record instead of leaving one
    isolated bad line for :func:`replay` to skip.
    """
    try:
        with open(path, "rb+") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) != b"\n":
                fh.write(b"\n")
    except FileNotFoundError:
        pass


def atomic_write(path: str, text: str) -> None:
    """Crash-safe whole-file write: temp file + ``fsync`` + ``os.replace``.

    A failure at any point — including the injected
    ``cluster.checkpoint_torn`` fault, which kills the writer after a
    partial *temp* write — leaves the target either untouched or fully
    replaced, never torn.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            if _chaos._ACTIVE is not None and _chaos.fire(
                CLUSTER_CHECKPOINT_TORN, key=os.path.basename(path)
            ):
                fh.write(text[: len(text) // 2])
                fh.flush()
                # The temp file is deliberately left behind, like a real
                # crash would; the target is untouched.
                raise _chaos.InjectedCrash(
                    f"checkpoint write torn mid-write: {path}"
                )
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_directory(directory)
    except _chaos.InjectedCrash:
        raise
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _fsync_directory(directory: str) -> None:
    """Make a completed rename durable by fsyncing its directory.

    ``os.replace`` updates the directory entry, and that entry lives in
    the directory's own data — without this fsync a crash right after
    the rename can resurrect the *old* file.  Platforms that cannot open
    a directory for reading (or fsync one) are tolerated silently; the
    rename is still atomic there, just not guaranteed durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class JournalState:
    """Everything :func:`replay` can reconstruct from a journal."""

    spec: Optional[dict] = None
    #: (kind, replicate) -> result payload (first occurrence wins; a
    #: retried task may journal duplicate replicates, all bit-identical)
    payloads: Dict[Tuple[str, int], dict] = field(default_factory=dict)
    failures: List[dict] = field(default_factory=list)
    worker_deaths: List[dict] = field(default_factory=list)
    tasks_started: int = 0
    tasks_finished: int = 0
    resumes: int = 0
    finished: bool = False
    #: The journalled autoMRE stop decision (``bootstop_converged``
    #: record), or None when the run never stopped early.
    bootstop: Optional[dict] = None
    events: List[dict] = field(default_factory=list)
    #: ``task_stolen`` records: idle worker groups pulling work from the
    #: richest other shard queue (sharded runs only).
    steals: List[dict] = field(default_factory=list)
    #: Shard layout info when the journal is a shard manifest
    #: (``n_shards``, ``generation``, ``compactions``, per-shard record
    #: counts); None for single-file journals.
    shards: Optional[dict] = None
    #: the run finished *degraded*: its deadline expired and the
    #: ``run_finished`` record salvages only the completed replicates.
    degraded: bool = False
    #: a ``task_deadline_exceeded`` event was journalled.
    deadline_exceeded: bool = False
    #: ``run_cancelled`` reasons seen (e.g. ``"drain"``); the journal
    #: is still resumable — the event is informational.
    cancellations: List[str] = field(default_factory=list)
    #: lines skipped by replay: torn tails, CRC failures, malformed
    #: result payloads — each with a companion entry in ``warnings``.
    corrupt_records: int = 0
    warnings: List[str] = field(default_factory=list)

    @property
    def done_inferences(self) -> Set[int]:
        return {r for (k, r) in self.payloads if k == "inference"}

    @property
    def done_bootstraps(self) -> Set[int]:
        return {r for (k, r) in self.payloads if k == "bootstrap"}

    @property
    def retries(self) -> List[dict]:
        return [f for f in self.failures if f.get("will_retry")]

    def perf_totals(self) -> Dict[str, int]:
        """Sum the per-task engine perf counters across all payloads."""
        totals: Dict[str, int] = {}
        for payload in self.payloads.values():
            for name, value in (payload.get("perf") or {}).items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals

    def _skip(self, label, reason: str) -> None:
        message = f"journal line {label}: skipped ({reason})"
        self.corrupt_records += 1
        self.warnings.append(message)
        logger.warning("%s", message)


def fold_record(state: JournalState, record: dict, label) -> None:
    """Fold one decoded record into *state*.

    Shared by single-file :func:`replay` and the sharded merge-replay
    (:func:`repro.cluster.shards.replay_sharded`), so both layouts
    reconstruct state through identical semantics.  *label* identifies
    the record's origin in skip warnings (a line number, or
    ``"shard2.g0.jsonl:17"`` for sharded journals).

    Malformed ``replicate_done`` payloads are skipped and counted; every
    other record is appended to ``state.events`` and folded by event.
    """
    from .jobs import validate_payload

    event = record.get("event")
    if event == "replicate_done":
        try:
            validate_payload(record["payload"])
        except (KeyError, ValueError) as exc:
            state._skip(label, f"bad result payload: {exc}")
            return
    state.events.append(record)
    if event == "run_started":
        state.spec = record["spec"]
    elif event == "run_resumed":
        state.resumes += 1
    elif event == "task_started":
        state.tasks_started += 1
    elif event == "task_finished":
        state.tasks_finished += 1
    elif event == "replicate_done":
        payload = record["payload"]
        key = (payload["kind"], payload["replicate"])
        state.payloads.setdefault(key, payload)
    elif event == "task_failed":
        state.failures.append(record)
    elif event == "task_stolen":
        state.steals.append(record)
    elif event == "worker_dead":
        state.worker_deaths.append(record)
    elif event == "bootstop_converged":
        state.bootstop = record
    elif event == "task_deadline_exceeded":
        state.deadline_exceeded = True
    elif event == "run_cancelled":
        state.cancellations.append(str(record.get("reason")))
    elif event == "run_finished":
        state.finished = True
        if record.get("degraded"):
            state.degraded = True


def apply_bootstop_eviction(state: JournalState) -> None:
    """Drop bootstrap payloads past the journalled stop decision.

    The stop decision is authoritative: bootstrap replicates that raced
    past the stop point (journalled before the decision was reached) are
    excluded so resume reproduces the stopped run bit-identically.
    """
    if state.bootstop is None:
        return
    stop_at = int(state.bootstop["stop_at"])
    for key in [k for k in state.payloads
                if k[0] == "bootstrap" and k[1] >= stop_at]:
        del state.payloads[key]


def replay(path: str) -> JournalState:
    """Reconstruct run state from a journal file.

    Any unreadable record — the classic torn tail from a dying writer,
    but also a CRC-failing or payload-malformed record *anywhere* in the
    file — is skipped with a warning and counted, never trusted: the
    affected replicate simply reruns on resume (idempotent by task
    identity).

    When *path* is a shard manifest the reconstruction dispatches to the
    deterministic merge-replay in :mod:`repro.cluster.shards`.
    """
    from .shards import is_manifest, replay_sharded

    if is_manifest(path):
        return replay_sharded(path)
    state = JournalState()
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = decode_record(line)
            except ValueError as exc:
                state._skip(line_no, str(exc))
                continue
            fold_record(state, record, line_no)
    apply_bootstop_eviction(state)
    return state


def compaction_lines(state: JournalState) -> List[str]:
    """The durable essence of a replayed run, as encoded journal lines.

    Keeps the run header, the first (winning) ``replicate_done`` per
    result key, the ``bootstop_converged`` decision when one was
    reached (without it a compacted unfinished run would resume past
    the stop point), and the terminal ``run_finished`` — dropping
    scheduling chatter, retries, and any corrupt lines.
    """
    lines: List[str] = []
    seen: Set[Tuple[str, int]] = set()
    trailer: List[str] = []
    for record in state.events:
        event = record.get("event")
        if event == "run_started":
            lines.append(encode_record(record))
        elif event == "replicate_done":
            payload = record["payload"]
            key = (payload["kind"], payload["replicate"])
            if key not in seen and key in state.payloads:
                seen.add(key)
                lines.append(encode_record(record))
        elif event == "bootstop_converged":
            lines.append(encode_record(record))
        elif event == "task_deadline_exceeded":
            # Provenance of a degraded finalize must survive compaction.
            lines.append(encode_record(record))
        elif event == "run_finished":
            trailer.append(encode_record(record))
    return lines + trailer


def compact_journal(path: str) -> JournalState:
    """Rewrite a journal to its durable essence, atomically.

    The single-file rewrite goes through :func:`atomic_write`, so a
    crash mid-compaction preserves the original journal.  Shard
    manifests dispatch to the generation-rotating
    :func:`repro.cluster.shards.compact_sharded`, whose commit point is
    an atomic manifest replace.  Returns the replayed state the
    compaction was derived from.
    """
    from .shards import compact_sharded, is_manifest

    if is_manifest(path):
        return compact_sharded(path)
    state = replay(path)
    lines = compaction_lines(state)
    atomic_write(path, "".join(line + "\n" for line in lines))
    return state
