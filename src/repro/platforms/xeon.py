"""Intel Pentium 4 Xeon (HyperThreading) platform model.

Paper section 6: "a 32-bit Intel Pentium 4 Xeon with Hyperthreading
technology (2-way SMT), running at 2 GHz, with 8 KB L1-D cache, 512 KB
L2 cache, and 1 MB L3 cache" — and because one Xeon offers only two
contexts, the authors used **two** such processors on a 4-way Dell
PowerEdge 6650, "a modification [that] favors the Xeon platform".

Calibration of the two free parameters (documented derivation):

* ``smt_slowdown = 1.30`` — Pentium 4 HyperThreading on FP-heavy
  codes typically yields 20-40 % per-thread degradation (the replicated
  FP units are shared); 1.30 is the midpoint.
* ``relative_speed = 1.10`` — solved from Figure 3's end point: the
  paper shows Cell beating the two-Xeon setup "by more than a factor of
  two"; at 128 bootstraps Cell-MGPS takes ~670 s, putting the Xeon near
  1400 s.  With 4 ranks and 32 tasks each:
  ``32 * 36.9 * 1.30 / v = 1400  ->  v = 1.096 ~ 1.10``.
  (A 2 GHz Netburst core and the 3.2 GHz in-order PPE landing within
  10 % of each other on scalar DP code is consistent with the era's
  SPEC numbers.)
"""

from __future__ import annotations

from .base import SMTPlatform

__all__ = ["xeon_platform"]


def xeon_platform(n_chips: int = 2) -> SMTPlatform:
    """The paper's dual-Xeon configuration (2 chips x 1 core x 2 HT)."""
    return SMTPlatform(
        name="Intel Xeon (HT)" if n_chips == 1 else f"{n_chips}x Intel Xeon (HT)",
        n_chips=n_chips,
        cores_per_chip=1,
        smt_per_core=2,
        relative_speed=1.10,
        smt_slowdown=1.30,
    )
