"""Comparison-platform models for the paper's Figure 3."""

from .base import PPE_TASK_SECONDS, SMTPlatform
from .power5 import power5_platform
from .xeon import xeon_platform

__all__ = ["PPE_TASK_SECONDS", "SMTPlatform", "power5_platform", "xeon_platform"]
