"""Generic SMT/multicore execution model for the master-worker workload.

The paper's Figure 3 runs the *same* embarrassingly parallel workload
(independent tree searches) on three machines; for the conventional
processors the execution model is simple: each hardware context runs
whole tasks sequentially, and co-scheduled contexts on one core suffer
an SMT slowdown.  What distinguishes platforms is their geometry
(chips x cores x SMT ways), their per-task speed relative to the
calibration anchor (the Cell PPE's 36.9 s per ``42_SC`` task), and
their SMT penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["SMTPlatform", "PPE_TASK_SECONDS"]

#: The calibration anchor: one 42_SC search on the Cell PPE (Table 1a).
PPE_TASK_SECONDS = 36.9


@dataclass(frozen=True)
class SMTPlatform:
    """A conventional multicore/SMT machine running MPI tasks.

    Parameters
    ----------
    name:
        Display name.
    n_chips, cores_per_chip, smt_per_core:
        Hardware geometry; total ranks = product.
    relative_speed:
        Single-thread task throughput relative to the Cell PPE
        (task time alone = ``PPE_TASK_SECONDS / relative_speed``).
    smt_slowdown:
        Per-thread slowdown factor when a core runs more than one task.
    """

    name: str
    n_chips: int
    cores_per_chip: int
    smt_per_core: int
    relative_speed: float
    smt_slowdown: float

    def __post_init__(self) -> None:
        if min(self.n_chips, self.cores_per_chip, self.smt_per_core) < 1:
            raise ValueError("geometry values must be >= 1")
        if self.relative_speed <= 0:
            raise ValueError("relative speed must be positive")
        if self.smt_slowdown < 1.0:
            raise ValueError("SMT slowdown is a factor >= 1")

    @property
    def n_cores(self) -> int:
        return self.n_chips * self.cores_per_chip

    @property
    def n_ranks(self) -> int:
        return self.n_cores * self.smt_per_core

    def task_seconds(self, concurrent_tasks: int) -> float:
        """Per-task time given how many tasks run machine-wide.

        Tasks spread across cores first; SMT sharing (and its penalty)
        only starts once every core is busy.
        """
        if concurrent_tasks < 1:
            raise ValueError("need at least one concurrent task")
        base = PPE_TASK_SECONDS / self.relative_speed
        if concurrent_tasks <= self.n_cores:
            return base
        return base * self.smt_slowdown

    def run_total_s(self, bootstraps: int) -> float:
        """Makespan of *bootstraps* independent tasks on this machine.

        Tasks are dealt round-robin to ranks; each scheduling round's
        duration depends on how many tasks are active in that round
        (full rounds pay the SMT penalty, a small final round may not).
        """
        if bootstraps < 1:
            raise ValueError("need at least one bootstrap")
        remaining = bootstraps
        total = 0.0
        while remaining > 0:
            active = min(remaining, self.n_ranks)
            total += self.task_seconds(active)
            remaining -= active
        return total

    def sweep(self, bootstrap_counts) -> List[float]:
        """Makespans over a list of bootstrap counts (Figure 3 series)."""
        return [self.run_total_s(b) for b in bootstrap_counts]
