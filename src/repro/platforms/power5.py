"""IBM Power5 platform model.

Paper section 6: "a 64-bit IBM Power5 ... quad-thread, dual-core
processor with dual SMT cores running at 1.65 GHz, 32 KB of L1-D and
L1-I cache, 1.92 MB of L2 cache, and 36 MB of L3 cache"; the
experiments run four MPI processes (both cores, both SMT contexts).

Calibration of the two free parameters (documented derivation):

* ``smt_slowdown = 1.25`` — published Power5 SMT studies report
  20-30 % per-thread degradation on FP workloads when both contexts of
  a core are busy.
* ``relative_speed = 2.00`` — solved from the paper's headline "Cell
  performs 9-10 % better than the IBM Power5": at 128 bootstraps
  Cell-MGPS takes ~670 s, so Power5 must land near 735 s; with 4 ranks
  and 32 tasks each: ``32 * 36.9 * 1.25 / v = 735 -> v = 2.01 ~ 2.0``.
  (The Power5's out-of-order core with a 36 MB L3 running the
  memory-bound likelihood kernels twice as fast as the in-order PPE at
  similar clock is consistent with the paper profiling RAxML *on a
  Power5* as its reference machine.)
"""

from __future__ import annotations

from .base import SMTPlatform

__all__ = ["power5_platform"]


def power5_platform() -> SMTPlatform:
    """The paper's Power5 configuration (1 chip x 2 cores x 2 SMT)."""
    return SMTPlatform(
        name="IBM Power5",
        n_chips=1,
        cores_per_chip=2,
        smt_per_core=2,
        relative_speed=2.00,
        smt_slowdown=1.25,
    )
