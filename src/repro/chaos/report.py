"""Chaos run classification: survival reports with one unacceptable class.

Every chaos run is compared against a fault-free baseline of the same
workload seed and lands in exactly one class:

``survived_identical``
    completed with a log likelihood *bit-identical* to the baseline —
    recovery (CLV recompute, task retry, resume) was transparent.
``survived_degraded``
    completed, but the engine reported degradation through its
    ``degraded`` perf counter (per-evaluation fallback to the reference
    backend).  The answer must still agree with the baseline within a
    tolerance; the run is loud, not silent.
``typed_failure``
    failed with a typed error the stack is allowed to surface
    (``EngineNumericalError``, ``TaskExecutionError``,
    ``InjectedCrash``, ``JournalWriteError``).
``untyped_failure``
    failed with anything else — a gap in the typed-error contract.
``silent_corruption``
    completed, produced a *different* answer, and reported nothing.
    The only class a campaign gates on: one of these fails CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SURVIVED_IDENTICAL",
    "SURVIVED_DEGRADED",
    "TYPED_FAILURE",
    "UNTYPED_FAILURE",
    "SILENT_CORRUPTION",
    "CLASSIFICATIONS",
    "ChaosRunResult",
    "ChaosSurvivalReport",
]

SURVIVED_IDENTICAL = "survived_identical"
SURVIVED_DEGRADED = "survived_degraded"
TYPED_FAILURE = "typed_failure"
UNTYPED_FAILURE = "untyped_failure"
SILENT_CORRUPTION = "silent_corruption"

CLASSIFICATIONS: Tuple[str, ...] = (
    SURVIVED_IDENTICAL,
    SURVIVED_DEGRADED,
    TYPED_FAILURE,
    UNTYPED_FAILURE,
    SILENT_CORRUPTION,
)


@dataclass(frozen=True)
class ChaosRunResult:
    """One chaos run's verdict against its fault-free baseline."""

    seed: int
    classification: str
    log_likelihood: Optional[float] = None
    baseline_log_likelihood: Optional[float] = None
    fired: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    resumes: int = 0
    degraded: int = 0

    def __post_init__(self):
        if self.classification not in CLASSIFICATIONS:
            raise ValueError(
                f"unknown classification {self.classification!r}"
            )

    @property
    def faults_fired(self) -> int:
        return sum(self.fired.values())

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "classification": self.classification,
            "log_likelihood": self.log_likelihood,
            "baseline_log_likelihood": self.baseline_log_likelihood,
            "fired": dict(self.fired),
            "error": self.error,
            "resumes": self.resumes,
            "degraded": self.degraded,
        }


@dataclass
class ChaosSurvivalReport:
    """A campaign's aggregated verdict.

    ``ok`` is the CI gate: no silent corruption and no untyped failure.
    Typed failures are acceptable (a run is allowed to die loudly) but
    are still counted so a campaign that *only* dies can be spotted.
    """

    label: str
    runs: List[ChaosRunResult] = field(default_factory=list)

    def add(self, result: ChaosRunResult) -> None:
        self.runs.append(result)

    @property
    def counts(self) -> Dict[str, int]:
        tally = {name: 0 for name in CLASSIFICATIONS}
        for run in self.runs:
            tally[run.classification] += 1
        return tally

    @property
    def ok(self) -> bool:
        counts = self.counts
        return (
            counts[SILENT_CORRUPTION] == 0
            and counts[UNTYPED_FAILURE] == 0
        )

    @property
    def faults_fired(self) -> int:
        return sum(run.faults_fired for run in self.runs)

    def offenders(self) -> List[ChaosRunResult]:
        return [
            run for run in self.runs
            if run.classification in (SILENT_CORRUPTION, UNTYPED_FAILURE)
        ]

    def summary(self) -> str:
        counts = self.counts
        parts = [
            f"{name}={counts[name]}"
            for name in CLASSIFICATIONS if counts[name]
        ]
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos[{self.label}]: {len(self.runs)} runs, "
            f"{self.faults_fired} faults fired — "
            f"{', '.join(parts) or 'no runs'} — {verdict}"
        ]
        for run in self.offenders():
            lines.append(
                f"  seed {run.seed}: {run.classification} "
                f"(lnL {run.log_likelihood!r} vs baseline "
                f"{run.baseline_log_likelihood!r}, error={run.error!r})"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "n_runs": len(self.runs),
            "counts": self.counts,
            "faults_fired": self.faults_fired,
            "ok": self.ok,
            "runs": [run.to_json() for run in self.runs],
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2)
