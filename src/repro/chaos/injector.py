"""Deterministic fault firing: the *whether* of chaos.

A :class:`FaultInjector` binds a :class:`~repro.chaos.plan.FaultPlan` to
per-site visit counters.  Each :meth:`~FaultInjector.fire` call at a
site counts one visit and decides — deterministically — whether the
fault fires there:

* explicit ``trigger_at`` visit indices win when present;
* otherwise a uniform draw in ``[0, 1)`` is derived from
  ``crc32(f"{seed}:{site}:{key or visit_index}")`` and compared against
  the spec's ``probability``.

No ``random.random()``, no global RNG state: the draw depends only on
the plan seed, the site name, and a caller-supplied key (or, failing
that, the visit index).  Cluster sites key on ``task_id:attempt`` so the
schedule is independent of worker count and dispatch order; engine
sites key on the visit index, which is deterministic because the engine
itself is.

The module-level ``_ACTIVE`` injector is what instrumented code probes.
The probe is designed for a zero-cost disabled path::

    from repro import chaos
    ...
    if chaos.injector._ACTIVE is not None:   # one global load + is-check
        chaos.fire("engine.clv_poison", ...)

Workers spawned by ``fork`` inherit the active injector (and their own
copy of its counters), which is exactly what the cluster sites want:
each worker process decides its own faults from the same plan.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import List, Optional, Tuple
from zlib import crc32

from .plan import FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "FaultInjector",
    "active_injector",
    "fire",
    "inject",
]


class InjectedFault(RuntimeError):
    """A synthetic fault raised *inside* instrumented code.

    Recovery machinery must treat it exactly like the organic failure it
    models (a stripe worker crashing, a disk write failing); tests can
    still tell it apart by type.
    """


class InjectedCrash(RuntimeError):
    """A synthetic process death.

    Raised where the modelled fault is "the process stops here" (torn
    journal write, torn checkpoint write).  Nothing below the top-level
    harness may catch and absorb it — the chaos campaign treats a run
    that swallows an ``InjectedCrash`` as broken.
    """


def _uniform(seed: int, site: str, token: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from (seed, site, token)."""
    return crc32(f"{seed}:{site}:{token}".encode()) / 2**32


class FaultInjector:
    """Per-site visit counting plus deterministic fire decisions.

    Thread-safe: engine sites can be visited from partitioned-backend
    pool threads concurrently with the main thread.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self.visits: Counter = Counter()
        self.fired: Counter = Counter()
        #: chronological (site, visit_index, key) log of every fire.
        self.fire_log: List[Tuple[str, int, Optional[str]]] = []

    def spec(self, site: str) -> Optional[FaultSpec]:
        return self.plan.spec_for(site)

    def fire(self, site: str, key: Optional[str] = None) -> bool:
        """Count one visit to ``site``; return True iff the fault fires."""
        spec = self.plan.spec_for(site)
        if spec is None:
            return False
        with self._lock:
            index = self.visits[site]
            self.visits[site] = index + 1
            if self.fired[site] >= spec.max_triggers:
                return False
            if spec.trigger_at:
                hit = index in spec.trigger_at
            else:
                token = key if key is not None else str(index)
                hit = (
                    spec.probability > 0.0
                    and _uniform(self.plan.seed, site, token)
                    < spec.probability
                )
            if hit:
                self.fired[site] += 1
                self.fire_log.append((site, index, key))
            return hit

    def summary(self) -> dict:
        return {
            "seed": self.plan.seed,
            "visits": dict(self.visits),
            "fired": dict(self.fired),
            "fire_log": [list(entry) for entry in self.fire_log],
        }


#: The injector instrumented code probes.  None == chaos disabled, and
#: the disabled check is a single module-global load.
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


def fire(site: str, key: Optional[str] = None) -> bool:
    """Visit ``site`` on the active injector; False when chaos is off."""
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.fire(site, key)


@contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for the dynamic extent of the block.

    Yields the :class:`FaultInjector` so callers can read its visit /
    fire counters afterwards.  Nesting is rejected: two overlapping
    plans would make fire decisions order-dependent.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already active; cannot nest")
    injector = FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
