"""repro.chaos: deterministic fault injection across engine and cluster.

The cluster layer (PR 2) claims fault tolerance and the engine (PR 1/4)
claims numerical self-defense, but both claims were exercised only by a
handful of hand-written crash tests.  This package turns them into a
*systematic adversary*: a declarative :class:`~repro.chaos.plan.FaultPlan`
(seed + site list + probability / trigger count per site) drives a fully
deterministic :class:`~repro.chaos.injector.FaultInjector` threaded
through every layer of the stack —

* engine numerics: NaN/Inf poisoning of a CLV stripe, forced underflow
  before rescaling (bit-transparent by construction), corrupted
  P-matrix cache entries;
* backend execution: a partitioned-stripe worker raising mid-reduction;
* cluster I/O and processes: worker crash-before-ack, worker hang past
  its heartbeat, torn journal records, checkpoint files torn mid-write,
  transient ``OSError`` on journal append.

Determinism contract: the same ``FaultPlan`` seed produces the same
injection schedule — probability draws hash ``(seed, site, key-or-visit
-index)`` through CRC32, never ``random.random()`` — so every chaos
failure reproduces from its seed alone.

:mod:`~repro.chaos.campaign` runs K-seed campaigns over the engine and
the cluster and classifies every run into a
:class:`~repro.chaos.report.ChaosSurvivalReport`: a run either completes
with a log likelihood bit-identical to the fault-free baseline, survives
*loudly degraded* (the engine fell back to the reference backend and
said so in its perf counters), or fails with a typed error.  Silent
corruption — completing with a different answer and no report — is the
only failure class, and the CI campaign gates on it being empty.

``campaign`` imports the phylo/cluster stacks, which themselves import
:mod:`repro.chaos.injector`; it is therefore loaded lazily to keep this
package importable from inside the engine without a cycle.
"""

from .injector import (
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    active_injector,
    fire,
    inject,
)
from .plan import (
    ALL_SITES,
    CLUSTER_SITES,
    ENGINE_SITES,
    SERVE_SITES,
    FaultPlan,
    FaultSpec,
    default_cluster_plan,
    default_engine_plan,
    default_serve_plan,
)
from .report import (
    CLASSIFICATIONS,
    ChaosRunResult,
    ChaosSurvivalReport,
    SILENT_CORRUPTION,
    SURVIVED_DEGRADED,
    SURVIVED_IDENTICAL,
    TYPED_FAILURE,
    UNTYPED_FAILURE,
)

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "active_injector",
    "fire",
    "inject",
    "ALL_SITES",
    "CLUSTER_SITES",
    "ENGINE_SITES",
    "SERVE_SITES",
    "FaultPlan",
    "FaultSpec",
    "default_cluster_plan",
    "default_engine_plan",
    "default_serve_plan",
    "CLASSIFICATIONS",
    "ChaosRunResult",
    "ChaosSurvivalReport",
    "SILENT_CORRUPTION",
    "SURVIVED_DEGRADED",
    "SURVIVED_IDENTICAL",
    "TYPED_FAILURE",
    "UNTYPED_FAILURE",
    # lazily loaded (heavy imports):
    "run_engine_campaign",
    "run_cluster_campaign",
    "run_serve_campaign",
    "run_resilience_campaign",
    "journal_payload_digest",
]

_LAZY = ("run_engine_campaign", "run_cluster_campaign",
         "run_serve_campaign", "run_resilience_campaign",
         "journal_payload_digest")


def __getattr__(name):
    if name in _LAZY:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
