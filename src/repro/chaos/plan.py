"""Declarative fault plans: the *what* and *when* of chaos.

A :class:`FaultPlan` is pure data — a seed plus one :class:`FaultSpec`
per injection site — and is JSON round-trippable, so a chaos campaign
can journal the exact adversary it ran against.  The *decision* logic
(deterministic probability draws, trigger budgets) lives in
:mod:`repro.chaos.injector`; this module only names the sites and the
knobs.

Fault-site taxonomy (see DESIGN.md §11):

===========================  ====================================================
site                         meaning
===========================  ====================================================
``engine.clv_poison``        overwrite a stripe of a freshly combined CLV with
                             NaN or Inf before the underflow-rescaling check
``engine.underflow``         force eligible CLV rows below the underflow
                             threshold by an exact power-of-two factor (and
                             pre-decrement their scale counts) so the rescaling
                             path must restore them bit-for-bit
``engine.pmat_corrupt``      overwrite a cached P-matrix stack with NaN in
                             place (the corruption *persists* until the cache
                             is invalidated)
``backend.stripe_raise``     one partitioned-backend stripe task raises
                             mid-reduction
``cluster.worker_crash_ack`` worker calls ``os._exit`` after streaming every
                             replicate but before the task-finished ack
``cluster.worker_hang``      worker stops heartbeating and sleeps forever
``cluster.journal_torn``     journal append writes a truncated record, then
                             the writing process dies (typed
                             :class:`~repro.chaos.injector.InjectedCrash`)
``cluster.journal_oserror``  transient ``OSError`` on journal append
``cluster.checkpoint_torn``  atomic checkpoint write dies after writing part
                             of the *temp* file (the target must stay intact)
``cluster.shard_torn``       a worker's WAL-shard append writes half its
                             record, then the worker dies (sharded journals
                             only; the torn line must stay isolated and the
                             merge-replay must skip it)
``cluster.steal_race``       a work steal races its victim: the stolen task
                             is dispatched from *both* queues and idempotent
                             first-wins results must absorb the duplicate
``serve.server_kill``        the serving process dies between two journal
                             appends of a running job (typed
                             :class:`~repro.chaos.injector.InjectedCrash`);
                             a restarted server must resume the job to a
                             bit-identical result
``serve.slow_client``        a client trickles its request bytes slower than
                             the server's header/body read timeouts (driven
                             client-side by the resilience campaign); the
                             server must answer with a typed 408, never hold
                             the connection open indefinitely
``serve.client_disconnect_mid_sse``  a client drops its connection in the
                             middle of an SSE journal stream; the server must
                             release the tailing task within one poll interval
``cluster.worker_stall``     worker wedges *while still heartbeating* (a
                             livelock, not a crash); the per-task timeout must
                             requeue the work
``cluster.worker_oom``       worker pins a runaway allocation resident and
                             stalls; the master's RSS watchdog must journal
                             ``worker_rss_exceeded`` and requeue instead of
                             letting the kernel OOM-kill silently
===========================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "ENGINE_CLV_POISON",
    "ENGINE_UNDERFLOW",
    "ENGINE_PMAT_CORRUPT",
    "BACKEND_STRIPE_RAISE",
    "CLUSTER_WORKER_CRASH_ACK",
    "CLUSTER_WORKER_HANG",
    "CLUSTER_JOURNAL_TORN",
    "CLUSTER_JOURNAL_OSERROR",
    "CLUSTER_CHECKPOINT_TORN",
    "CLUSTER_SHARD_TORN",
    "CLUSTER_STEAL_RACE",
    "CLUSTER_WORKER_STALL",
    "CLUSTER_WORKER_OOM",
    "SERVE_SERVER_KILL",
    "SERVE_SLOW_CLIENT",
    "SERVE_CLIENT_DISCONNECT_MID_SSE",
    "ENGINE_SITES",
    "CLUSTER_SITES",
    "SERVE_SITES",
    "RESILIENCE_SITES",
    "ALL_SITES",
    "FaultSpec",
    "FaultPlan",
    "default_engine_plan",
    "default_cluster_plan",
    "default_serve_plan",
    "default_resilience_plan",
]

# -- the site taxonomy --------------------------------------------------------

ENGINE_CLV_POISON = "engine.clv_poison"
ENGINE_UNDERFLOW = "engine.underflow"
ENGINE_PMAT_CORRUPT = "engine.pmat_corrupt"
BACKEND_STRIPE_RAISE = "backend.stripe_raise"
CLUSTER_WORKER_CRASH_ACK = "cluster.worker_crash_ack"
CLUSTER_WORKER_HANG = "cluster.worker_hang"
CLUSTER_JOURNAL_TORN = "cluster.journal_torn"
CLUSTER_JOURNAL_OSERROR = "cluster.journal_oserror"
CLUSTER_CHECKPOINT_TORN = "cluster.checkpoint_torn"
CLUSTER_SHARD_TORN = "cluster.shard_torn"
CLUSTER_STEAL_RACE = "cluster.steal_race"
CLUSTER_WORKER_STALL = "cluster.worker_stall"
CLUSTER_WORKER_OOM = "cluster.worker_oom"
SERVE_SERVER_KILL = "serve.server_kill"
SERVE_SLOW_CLIENT = "serve.slow_client"
SERVE_CLIENT_DISCONNECT_MID_SSE = "serve.client_disconnect_mid_sse"

#: Sites visited inside one likelihood engine (any backend).
ENGINE_SITES: Tuple[str, ...] = (
    ENGINE_CLV_POISON,
    ENGINE_UNDERFLOW,
    ENGINE_PMAT_CORRUPT,
    BACKEND_STRIPE_RAISE,
)

#: Sites visited by the cluster master loop and its workers.
CLUSTER_SITES: Tuple[str, ...] = (
    CLUSTER_WORKER_CRASH_ACK,
    CLUSTER_WORKER_HANG,
    CLUSTER_JOURNAL_TORN,
    CLUSTER_JOURNAL_OSERROR,
    CLUSTER_CHECKPOINT_TORN,
    CLUSTER_SHARD_TORN,
    CLUSTER_STEAL_RACE,
)

#: Sites visited by the inference service front-end (repro.serve).
SERVE_SITES: Tuple[str, ...] = (
    SERVE_SERVER_KILL,
)

#: Sites of the resilience campaign (ISSUE 10): hostile clients against
#: a live server plus wedged/ballooning workers underneath it.  Kept
#: out of CLUSTER_SITES/SERVE_SITES so the existing campaigns' draw
#: schedules stay byte-identical (draws are keyed per site).
RESILIENCE_SITES: Tuple[str, ...] = (
    SERVE_SLOW_CLIENT,
    SERVE_CLIENT_DISCONNECT_MID_SSE,
    CLUSTER_WORKER_STALL,
    CLUSTER_WORKER_OOM,
)

ALL_SITES: Tuple[str, ...] = (
    ENGINE_SITES + CLUSTER_SITES + SERVE_SITES + RESILIENCE_SITES
)


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection policy.

    ``trigger_at`` (0-based visit indices) takes precedence over
    ``probability`` when non-empty; either way a spec never fires more
    than ``max_triggers`` times per process.  ``value`` carries a
    site-specific argument (``engine.clv_poison``: ``"nan"`` or
    ``"inf"``).
    """

    site: str
    probability: float = 0.0
    max_triggers: int = 1
    trigger_at: Tuple[int, ...] = ()
    value: Optional[str] = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: {self}")
        if self.max_triggers < 1:
            raise ValueError(f"max_triggers must be >= 1: {self}")

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["trigger_at"] = list(self.trigger_at)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultSpec":
        data = dict(payload)
        data["trigger_at"] = tuple(data.get("trigger_at") or ())
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded adversary: which sites fire, how often, and when.

    The plan is inert data; activate it with
    :func:`repro.chaos.injector.inject`.  Two activations of the same
    plan over the same (deterministic) program produce the same
    injection schedule — the determinism contract every chaos test and
    campaign relies on.
    """

    seed: int
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        sites = [s.site for s in self.specs]
        if len(set(sites)) != len(sites):
            raise ValueError(f"duplicate sites in plan: {sites}")

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(s.site for s in self.specs)

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [s.to_json() for s in self.specs],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(payload["seed"]),
            specs=tuple(
                FaultSpec.from_json(s) for s in payload.get("specs", [])
            ),
        )


def default_engine_plan(
    seed: int, sites: Optional[Tuple[str, ...]] = None
) -> FaultPlan:
    """The standard engine-layer adversary for one campaign seed.

    Probabilities are tuned for the campaign's small workloads (tens of
    ``newview`` visits): most seeds draw at least one fault, and
    ``max_triggers`` bounds the damage so the recompute ladder — not
    retry exhaustion — is what gets exercised.  The poison value
    alternates NaN/Inf by seed so both non-finite classes are covered
    across a campaign.
    """
    sites = ENGINE_SITES if sites is None else sites
    catalogue = {
        ENGINE_CLV_POISON: FaultSpec(
            ENGINE_CLV_POISON, probability=0.05, max_triggers=2,
            value="inf" if seed % 2 else "nan",
        ),
        ENGINE_UNDERFLOW: FaultSpec(
            ENGINE_UNDERFLOW, probability=0.08, max_triggers=2,
        ),
        ENGINE_PMAT_CORRUPT: FaultSpec(
            ENGINE_PMAT_CORRUPT, probability=0.02, max_triggers=1,
        ),
        BACKEND_STRIPE_RAISE: FaultSpec(
            BACKEND_STRIPE_RAISE, probability=0.01, max_triggers=1,
        ),
    }
    return FaultPlan(
        seed=seed, specs=tuple(catalogue[s] for s in sites)
    )


def default_serve_plan(
    seed: int, sites: Optional[Tuple[str, ...]] = None
) -> FaultPlan:
    """The standard service-layer adversary for one campaign seed.

    The kill site is visited once per journal append of the running
    job (a campaign job appends a few dozen records), so most seeds
    kill the server at least once mid-job and ``max_triggers`` allows
    a second kill during the resumed run — the restart path itself
    gets chaos coverage.
    """
    sites = SERVE_SITES if sites is None else sites
    catalogue = {
        SERVE_SERVER_KILL: FaultSpec(
            SERVE_SERVER_KILL, probability=0.08, max_triggers=2,
        ),
    }
    return FaultPlan(
        seed=seed, specs=tuple(catalogue[s] for s in sites)
    )


def default_cluster_plan(
    seed: int, sites: Optional[Tuple[str, ...]] = None
) -> FaultPlan:
    """The standard cluster-layer adversary for one campaign seed.

    Process faults key their draws on ``task_id:attempt``, so the
    schedule is identical regardless of worker count or dispatch order.
    Probabilities are per *task attempt* (a campaign job has ~5-7), so
    roughly every other seed loses a worker and journal faults stay
    rare enough that retry budgets are exercised but not exhausted.
    """
    sites = CLUSTER_SITES if sites is None else sites
    catalogue = {
        CLUSTER_WORKER_CRASH_ACK: FaultSpec(
            CLUSTER_WORKER_CRASH_ACK, probability=0.10, max_triggers=1,
        ),
        CLUSTER_WORKER_HANG: FaultSpec(
            CLUSTER_WORKER_HANG, probability=0.06, max_triggers=1,
        ),
        CLUSTER_JOURNAL_TORN: FaultSpec(
            CLUSTER_JOURNAL_TORN, probability=0.04, max_triggers=1,
        ),
        CLUSTER_JOURNAL_OSERROR: FaultSpec(
            CLUSTER_JOURNAL_OSERROR, probability=0.04, max_triggers=2,
        ),
        CLUSTER_CHECKPOINT_TORN: FaultSpec(
            CLUSTER_CHECKPOINT_TORN, probability=0.05, max_triggers=1,
        ),
        # Sharded-journal sites: both are unvisited in single-file runs
        # (draws are keyed per site), so adding them leaves unsharded
        # campaigns byte-identical.
        CLUSTER_SHARD_TORN: FaultSpec(
            CLUSTER_SHARD_TORN, probability=0.04, max_triggers=1,
        ),
        CLUSTER_STEAL_RACE: FaultSpec(
            CLUSTER_STEAL_RACE, probability=0.15, max_triggers=2,
        ),
    }
    return FaultPlan(
        seed=seed, specs=tuple(catalogue[s] for s in sites)
    )


def default_resilience_plan(
    seed: int, sites: Optional[Tuple[str, ...]] = None
) -> FaultPlan:
    """The standard resilience adversary for one campaign seed.

    The client-side sites are *scenario* draws — the campaign driver
    consults them once per run to decide whether to play the hostile
    client — so their probabilities are per job, not per visit.  The
    worker sites fire inside forked workers keyed on
    ``task_id:attempt`` like every other process fault; a campaign job
    has a handful of attempts, so roughly half the seeds wedge at least
    one worker.
    """
    sites = RESILIENCE_SITES if sites is None else sites
    catalogue = {
        SERVE_SLOW_CLIENT: FaultSpec(
            SERVE_SLOW_CLIENT, probability=0.5, max_triggers=1,
        ),
        SERVE_CLIENT_DISCONNECT_MID_SSE: FaultSpec(
            SERVE_CLIENT_DISCONNECT_MID_SSE, probability=0.5, max_triggers=1,
        ),
        CLUSTER_WORKER_STALL: FaultSpec(
            CLUSTER_WORKER_STALL, probability=0.08, max_triggers=1,
        ),
        CLUSTER_WORKER_OOM: FaultSpec(
            CLUSTER_WORKER_OOM, probability=0.08, max_triggers=1,
        ),
    }
    return FaultPlan(
        seed=seed, specs=tuple(catalogue[s] for s in sites)
    )
