"""K-seed chaos campaigns against fault-free baselines.

A campaign runs the *same* small inference workload once cleanly and
then ``n_seeds`` times under seeded :class:`~repro.chaos.plan.FaultPlan`
adversaries, classifying every run against the baseline (see
:mod:`repro.chaos.report`).  The contract it enforces is binary: a run
either completes with a log likelihood bit-identical to the fault-free
baseline (or loudly degraded within tolerance), or it fails with a
typed error.  ``silent_corruption`` — completing with a different
answer and reporting nothing — is the one class that fails CI.

Two campaign flavours:

* :func:`run_engine_campaign` — in-process, engine-layer faults
  (CLV poison, forced underflow, P-matrix corruption, stripe raise)
  against one kernel backend.
* :func:`run_cluster_campaign` — full journalled master-worker runs
  with process faults (worker crash/hang, torn journal and checkpoint
  writes, transient append errors), including crash-resume loops.
* :func:`run_serve_campaign` — the inference service under
  ``serve.server_kill``: the serving process dies between journal
  appends of a running job, a fresh service recovers the same store
  root, and the finished result (plus the content-addressed cache
  behaviour) must be byte-identical to the fault-free baseline.
* :func:`run_resilience_campaign` — a *live* HTTP server under hostile
  clients (slowloris submits, mid-SSE disconnects) and wedged workers
  (``cluster.worker_stall``, ``cluster.worker_oom``), every step under
  its own watchdog: typed errors, journalled degradation, or
  bit-identical results — never a hang.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Tuple

from ..cluster.checkpoint import JournalWriteError, atomic_write, replay
from ..cluster.jobs import JobSpec
from ..cluster.queue import ClusterConfig, TaskExecutionError
from ..cluster.runner import resume_job, run_job
from ..phylo.engine.protocol import EngineNumericalError
from ..phylo.inference import infer_tree
from ..phylo.search import SearchConfig
from ..phylo.simulate import synthetic_dataset
from .injector import InjectedCrash, inject
from .plan import (
    SERVE_CLIENT_DISCONNECT_MID_SSE,
    SERVE_SLOW_CLIENT,
    FaultPlan,
    default_cluster_plan,
    default_engine_plan,
    default_resilience_plan,
    default_serve_plan,
)
from .report import (
    SILENT_CORRUPTION,
    SURVIVED_DEGRADED,
    SURVIVED_IDENTICAL,
    TYPED_FAILURE,
    UNTYPED_FAILURE,
    ChaosRunResult,
    ChaosSurvivalReport,
)

__all__ = [
    "CAMPAIGN_WORKLOAD",
    "campaign_patterns",
    "campaign_search_config",
    "run_engine_campaign",
    "run_cluster_campaign",
    "run_serve_campaign",
    "run_resilience_campaign",
    "journal_payload_digest",
]

#: The shared campaign workload: small enough that a 25-seed sweep over
#: three backends stays in CI budget, large enough that a search visits
#: every instrumented site many times.
CAMPAIGN_WORKLOAD = {"n_taxa": 8, "n_sites": 300, "seed": 11}

#: Inference seed for the engine campaign (all chaos seeds rerun the
#: *same* search so the baseline comparison is bit-for-bit meaningful).
ENGINE_INFER_SEED = 3

#: A degraded run fell back to the reference backend mid-flight; its
#: answer may differ from the original backend's in the last bits but
#: must agree to this relative tolerance.
DEGRADED_REL_TOL = 1e-6

#: Typed errors a chaos run is allowed to die with (the loud-failure
#: contract of DESIGN.md §11); anything else is ``untyped_failure``.
TYPED_ERRORS = (
    EngineNumericalError,
    TaskExecutionError,
    JournalWriteError,
    InjectedCrash,
)


def campaign_patterns():
    """The compressed campaign alignment (~30 patterns)."""
    return synthetic_dataset(
        n_taxa=CAMPAIGN_WORKLOAD["n_taxa"],
        n_sites=CAMPAIGN_WORKLOAD["n_sites"],
        seed=CAMPAIGN_WORKLOAD["seed"],
    ).compress()


def campaign_search_config() -> SearchConfig:
    """A truncated hill climb: full code paths, small constant factors."""
    return SearchConfig(
        initial_radius=2,
        max_radius=3,
        max_rounds=3,
        smoothing_passes=1,
        final_smoothing_passes=2,
        epsilon=0.02,
        local_branch_iterations=6,
    )


class _CounterCollector:
    """Minimal tracer harvesting ``engine.perf_counters`` (no-op hooks)."""

    def __init__(self):
        self._sources = []

    def add_counter_source(self, source) -> None:
        self._sources.append(source)

    def perf_counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for source in self._sources:
            merged.update(source())
        return merged

    def push_context(self, name):
        return None

    def __getattr__(self, name):
        return lambda *args, **kwargs: None


# -- engine campaign ----------------------------------------------------------


def _engine_once(patterns, backend: Optional[str]
                 ) -> Tuple[float, Dict[str, int]]:
    """One full inference; returns (lnL, engine perf counters)."""
    collector = _CounterCollector()
    result = infer_tree(
        patterns,
        config=campaign_search_config(),
        seed=ENGINE_INFER_SEED,
        tracer=collector,
        backend=backend,
    )
    return result.log_likelihood, collector.perf_counters()


def _engine_chaos_run(patterns, backend: Optional[str], plan: FaultPlan,
                      baseline_lnl: float) -> ChaosRunResult:
    fired: Dict[str, int] = {}
    try:
        with inject(plan) as injector:
            try:
                lnl, counters = _engine_once(patterns, backend)
            finally:
                fired = dict(injector.fired)
        degraded = int(counters.get("degraded", 0))
        if degraded == 0 and lnl == baseline_lnl:
            classification = SURVIVED_IDENTICAL
        elif degraded > 0 and abs(lnl - baseline_lnl) <= (
            DEGRADED_REL_TOL * abs(baseline_lnl)
        ):
            classification = SURVIVED_DEGRADED
        else:
            classification = SILENT_CORRUPTION
        return ChaosRunResult(
            seed=plan.seed,
            classification=classification,
            log_likelihood=lnl,
            baseline_log_likelihood=baseline_lnl,
            fired=fired,
            degraded=degraded,
        )
    except TYPED_ERRORS as exc:
        return ChaosRunResult(
            seed=plan.seed, classification=TYPED_FAILURE,
            baseline_log_likelihood=baseline_lnl, fired=fired,
            error=f"{type(exc).__name__}: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 — the untyped-failure gate
        return ChaosRunResult(
            seed=plan.seed, classification=UNTYPED_FAILURE,
            baseline_log_likelihood=baseline_lnl, fired=fired,
            error=f"{type(exc).__name__}: {exc}",
        )


def run_engine_campaign(
    n_seeds: int = 25,
    backend: Optional[str] = None,
    sites: Optional[Tuple[str, ...]] = None,
    start_seed: int = 0,
    patterns=None,
) -> ChaosSurvivalReport:
    """Sweep ``n_seeds`` engine-fault adversaries against one backend.

    Every chaos seed reruns the identical search under
    :func:`~repro.chaos.plan.default_engine_plan`; ``sites`` restricts
    the adversary (e.g. to backend-neutral sites for cross-backend
    classification comparisons).
    """
    if patterns is None:
        patterns = campaign_patterns()
    baseline_lnl, _ = _engine_once(patterns, backend)
    report = ChaosSurvivalReport(label=f"engine:{backend or 'default'}")
    for seed in range(start_seed, start_seed + n_seeds):
        plan = default_engine_plan(seed, sites=sites)
        report.add(_engine_chaos_run(patterns, backend, plan, baseline_lnl))
    return report


# -- cluster campaign ---------------------------------------------------------


def _cluster_spec() -> JobSpec:
    return JobSpec(
        n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
        config=campaign_search_config(),
    )


def _cluster_config(n_workers: int) -> ClusterConfig:
    """Small timeouts so injected hangs cost ~1 s, not the defaults."""
    return ClusterConfig(
        n_workers=n_workers,
        task_timeout_s=60.0,
        max_retries=2,
        retry_backoff_s=0.01,
        retry_backoff_cap_s=0.1,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
    )


def _make_clock():
    """A deterministic journal clock: 1.0, 2.0, 3.0, ..."""
    state = {"t": 0}

    def clock() -> float:
        state["t"] += 1
        return float(state["t"])

    return clock


def journal_payload_digest(path: str) -> str:
    """Canonical digest of a journal's replicate payloads.

    Replays the journal (so torn/corrupt records are already filtered
    out) and hashes the ``(kind, replicate) -> payload`` map in sorted
    order — independent of arrival order, retries, and resume
    boundaries.  Two runs of the same job spec must digest identically.
    """
    state = replay(path)
    canonical = json.dumps(
        [
            [kind, replicate, state.payloads[(kind, replicate)]]
            for kind, replicate in sorted(state.payloads)
        ],
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _cluster_chaos_run(patterns, plan: FaultPlan, n_workers: int,
                       rundir: str, baseline_lnl: float,
                       baseline_digest: str,
                       max_resumes: int,
                       n_shards: Optional[int] = None) -> ChaosRunResult:
    os.makedirs(rundir, exist_ok=True)
    journal_path = os.path.join(rundir, "journal.jsonl")
    best_path = os.path.join(rundir, "best.tree")
    cfg = _cluster_config(n_workers)
    clock = _make_clock()
    resumes = 0
    fired: Dict[str, int] = {}
    try:
        with inject(plan) as injector:
            try:
                analysis = None
                while analysis is None:
                    try:
                        if not os.path.exists(journal_path):
                            analysis = run_job(
                                _cluster_spec(), patterns,
                                journal_path=journal_path, cluster=cfg,
                                clock=clock, n_shards=n_shards,
                            )
                        else:
                            resumes += 1
                            analysis = resume_job(
                                journal_path, patterns, cluster=cfg,
                                clock=clock,
                            )
                    except InjectedCrash:
                        if resumes >= max_resumes:
                            raise
                # Post-run checkpoint: the atomic best-tree write is
                # itself a fault site (cluster.checkpoint_torn); a torn
                # attempt must leave the target intact, and the bounded
                # retry must land the full content.
                attempt = 0
                while True:
                    try:
                        atomic_write(best_path,
                                     analysis.best.newick + "\n")
                        break
                    except InjectedCrash:
                        attempt += 1
                        if attempt > 3:
                            raise
            finally:
                fired = dict(injector.fired)
        lnl = analysis.best.log_likelihood
        digest = journal_payload_digest(journal_path)
        with open(best_path) as fh:
            checkpoint_ok = fh.read() == analysis.best.newick + "\n"
        state = replay(journal_path)
        if state.worker_deaths:
            fired["observed.worker_deaths"] = len(state.worker_deaths)
        if state.retries:
            fired["observed.retries"] = len(state.retries)
        identical = (
            lnl == baseline_lnl
            and digest == baseline_digest
            and checkpoint_ok
        )
        return ChaosRunResult(
            seed=plan.seed,
            classification=SURVIVED_IDENTICAL if identical
            else SILENT_CORRUPTION,
            log_likelihood=lnl,
            baseline_log_likelihood=baseline_lnl,
            fired=fired,
            resumes=resumes,
        )
    except TYPED_ERRORS as exc:
        return ChaosRunResult(
            seed=plan.seed, classification=TYPED_FAILURE,
            baseline_log_likelihood=baseline_lnl, fired=fired,
            error=f"{type(exc).__name__}: {exc}", resumes=resumes,
        )
    except Exception as exc:  # noqa: BLE001 — the untyped-failure gate
        return ChaosRunResult(
            seed=plan.seed, classification=UNTYPED_FAILURE,
            baseline_log_likelihood=baseline_lnl, fired=fired,
            error=f"{type(exc).__name__}: {exc}", resumes=resumes,
        )


# -- serve campaign -----------------------------------------------------------


def _serve_workload() -> str:
    """The campaign alignment as submittable FASTA text."""
    return synthetic_dataset(
        n_taxa=CAMPAIGN_WORKLOAD["n_taxa"],
        n_sites=CAMPAIGN_WORKLOAD["n_sites"],
        seed=CAMPAIGN_WORKLOAD["seed"],
    ).to_fasta()


def _canonical_result(payload: Optional[dict]) -> str:
    return json.dumps(payload, sort_keys=True)


def _serve_run_to_completion(root: str, fasta: str, spec: JobSpec,
                             n_workers: int, max_restarts: int) -> Tuple[dict, int, object]:
    """Drive one submission to completion through server kills.

    Each :class:`~repro.chaos.injector.InjectedCrash` models the serving
    process dying; we discard the service object (its scheduler state
    dies with it) and build a fresh one over the same store root, whose
    :meth:`~repro.serve.jobstore.JobService.recover` re-enqueues the
    orphaned job.  Returns ``(result payload, restarts, final service)``.
    """
    from ..serve.jobstore import JobService

    cfg = _cluster_config(n_workers)
    restarts = 0
    service = JobService(root, n_workers=n_workers, cluster=cfg,
                         clock=_make_clock())
    record, hit = service.submit(fasta, spec, client="campaign")
    if hit:
        raise RuntimeError("campaign submission unexpectedly hit the cache")
    while True:
        try:
            done = service.run_next()
        except InjectedCrash:
            restarts += 1
            if restarts > max_restarts:
                raise
            service = JobService(root, n_workers=n_workers, cluster=cfg,
                                 clock=_make_clock())
            service.recover()
            continue
        if done is None or done.job_id == record.job_id:
            break
    result = service.result(record.job_id)
    if result is None:
        record = service.store.get(record.job_id)
        raise RuntimeError(
            f"job finished without a result: state={record.state} "
            f"error={record.error}"
        )
    return result, restarts, service


def _serve_chaos_run(fasta: str, spec: JobSpec, plan: FaultPlan,
                     n_workers: int, rundir: str,
                     baseline_canonical: str,
                     max_restarts: int) -> ChaosRunResult:
    os.makedirs(rundir, exist_ok=True)
    fired: Dict[str, int] = {}
    restarts = 0
    try:
        with inject(plan) as injector:
            try:
                result, restarts, service = _serve_run_to_completion(
                    rundir, fasta, spec, n_workers, max_restarts
                )
            finally:
                fired = dict(injector.fired)
        # The survived store must also keep its caching contract: an
        # identical resubmission is a hit and schedules no new run.
        runs_before = service.store.runs_executed
        _record2, hit2 = service.submit(fasta, spec, client="campaign-dup")
        cache_ok = hit2 and service.store.runs_executed == runs_before
        identical = (
            _canonical_result(result) == baseline_canonical and cache_ok
        )
        if not cache_ok:
            fired["observed.cache_miss_on_dup"] = 1
        return ChaosRunResult(
            seed=plan.seed,
            classification=SURVIVED_IDENTICAL if identical
            else SILENT_CORRUPTION,
            log_likelihood=result["best_log_likelihood"],
            fired=fired,
            resumes=restarts,
        )
    except TYPED_ERRORS as exc:
        return ChaosRunResult(
            seed=plan.seed, classification=TYPED_FAILURE, fired=fired,
            error=f"{type(exc).__name__}: {exc}", resumes=restarts,
        )
    except Exception as exc:  # noqa: BLE001 — the untyped-failure gate
        return ChaosRunResult(
            seed=plan.seed, classification=UNTYPED_FAILURE, fired=fired,
            error=f"{type(exc).__name__}: {exc}", resumes=restarts,
        )


def run_serve_campaign(
    n_seeds: int = 25,
    n_workers: int = 2,
    workdir: Optional[str] = None,
    sites: Optional[Tuple[str, ...]] = None,
    start_seed: int = 0,
    max_restarts: int = 4,
    fasta: Optional[str] = None,
    spec: Optional[JobSpec] = None,
) -> ChaosSurvivalReport:
    """Sweep ``n_seeds`` server-kill adversaries over the job service.

    Each seed submits the campaign job to a fresh store root and drives
    it to completion under :func:`~repro.chaos.plan.default_serve_plan`,
    replacing the service with a recovered one after every injected
    kill.  Survival requires the final result payload — best tree,
    supports, consensus, perf counters — to be *byte-identical* to the
    fault-free baseline's, and an identical resubmission to hit the
    result cache without scheduling a new run.
    """
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-serve-")
    if fasta is None:
        fasta = _serve_workload()
    if spec is None:
        spec = _cluster_spec()
    baseline, _restarts, _svc = _serve_run_to_completion(
        os.path.join(workdir, "baseline"), fasta, spec, n_workers,
        max_restarts=0,
    )
    baseline_canonical = _canonical_result(baseline)
    report = ChaosSurvivalReport(label=f"serve:{n_workers}w")
    for seed in range(start_seed, start_seed + n_seeds):
        plan = default_serve_plan(seed, sites=sites)
        report.add(
            _serve_chaos_run(
                fasta, spec, plan, n_workers,
                os.path.join(workdir, f"seed{seed:03d}"),
                baseline_canonical, max_restarts,
            )
        )
    return report


def run_cluster_campaign(
    n_seeds: int = 25,
    n_workers: int = 2,
    workdir: Optional[str] = None,
    sites: Optional[Tuple[str, ...]] = None,
    start_seed: int = 0,
    patterns=None,
    max_resumes: int = 4,
    n_shards: Optional[int] = None,
) -> ChaosSurvivalReport:
    """Sweep ``n_seeds`` cluster-fault adversaries over journalled runs.

    Each seed executes the full job (1 inference + 4 bootstraps) under
    :func:`~repro.chaos.plan.default_cluster_plan`, resuming from the
    journal after every injected master crash (torn journal append,
    torn checkpoint).  Survival requires the best log likelihood *and*
    the replayed payload digest to match the fault-free baseline
    exactly — worker count, retries, and resume boundaries must all be
    invisible in the answer.

    ``n_shards`` runs every chaos seed on a sharded journal (adding the
    ``cluster.shard_torn`` / ``cluster.steal_race`` sites to the live
    attack surface) while the baseline stays single-file, so a
    surviving digest proves shard merge-replay equivalence, not just
    crash recovery.
    """
    if patterns is None:
        patterns = campaign_patterns()
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    baseline_dir = os.path.join(workdir, "baseline")
    os.makedirs(baseline_dir, exist_ok=True)
    baseline_journal = os.path.join(baseline_dir, "journal.jsonl")
    baseline = run_job(
        _cluster_spec(), patterns, journal_path=baseline_journal,
        cluster=_cluster_config(n_workers), clock=_make_clock(),
    )
    baseline_lnl = baseline.best.log_likelihood
    baseline_digest = journal_payload_digest(baseline_journal)
    label = f"cluster:{n_workers}w" + (
        f":{n_shards}s" if n_shards else ""
    )
    report = ChaosSurvivalReport(label=label)
    for seed in range(start_seed, start_seed + n_seeds):
        plan = default_cluster_plan(seed, sites=sites)
        report.add(
            _cluster_chaos_run(
                patterns, plan, n_workers,
                os.path.join(workdir, f"seed{seed:03d}"),
                baseline_lnl, baseline_digest, max_resumes,
                n_shards=n_shards,
            )
        )
    return report

# -- resilience campaign ------------------------------------------------------
#
# The live-server arm (ISSUE 10): a real ServeApp over HTTP attacked by
# hostile *clients* (slowloris submits, mid-SSE disconnects) while its
# workers wedge (cluster.worker_stall) or balloon (cluster.worker_oom)
# underneath.  The contract is the zero-hang closure: every step runs
# under its own asyncio watchdog, and a seed either survives with a
# result byte-identical to the fault-free baseline (journalled
# degradation allowed), or dies with a typed error — never a hang.

#: Per-HTTP-step watchdog; a step that outlives this is a hang, which
#: is classified untyped and fails the campaign.
RESILIENCE_STEP_TIMEOUT_S = 60.0

#: End-to-end watchdog for one seed's job reaching a terminal state
#: (covers a stalled worker costing one task timeout plus the rerun).
RESILIENCE_JOB_TIMEOUT_S = 300.0


def _resilience_spec() -> JobSpec:
    """The campaign job exactly as the HTTP API would build it.

    No custom ``SearchConfig``: the submission surface only exposes the
    ``model`` block, so the baseline must use the same default search
    the API-built spec implies — otherwise the two runs answer
    different questions and the byte-identity check is meaningless.
    """
    return JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2)


def _resilience_cluster_config(n_workers: int) -> ClusterConfig:
    """Small timeouts + an RSS ceiling sized against the OOM ballast.

    The ceiling sits roughly half a ballast above the *current* process
    RSS: forked workers start near the parent's resident size, so a
    healthy worker stays far below it while the injected
    ``cluster.worker_oom`` ballast (one full ballast of resident pages)
    sails far above — robust to whatever the parent happens to weigh.
    """
    from ..cluster.queue import _OOM_BALLAST_MB, _rss_bytes

    parent_rss = _rss_bytes(os.getpid()) or 256 * 1024 * 1024
    limit_mb = parent_rss / (1024.0 * 1024.0) + _OOM_BALLAST_MB / 2.0
    return ClusterConfig(
        n_workers=n_workers,
        task_timeout_s=8.0,
        max_retries=2,
        retry_backoff_s=0.01,
        retry_backoff_cap_s=0.1,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
        max_worker_rss_mb=limit_mb,
    )


async def _http_json(host: str, port: int, method: str, path: str,
                     payload: Optional[dict] = None,
                     timeout: float = RESILIENCE_STEP_TIMEOUT_S
                     ) -> Tuple[int, Optional[dict]]:
    """One bounded HTTP/1.1 round-trip returning (status, JSON body)."""

    async def _go() -> Tuple[int, Optional[dict]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = (b"" if payload is None
                    else json.dumps(payload).encode())
            head = f"{method} {path} HTTP/1.1\r\nHost: campaign\r\n"
            if body:
                head += ("Content-Type: application/json\r\n"
                         f"Content-Length: {len(body)}\r\n")
            head += "\r\n"
            writer.write(head.encode() + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        status = int(raw.split(b" ", 2)[1])
        blob = raw.split(b"\r\n\r\n", 1)[1]
        return status, (json.loads(blob) if blob.strip() else None)

    return await asyncio.wait_for(_go(), timeout)


async def _slow_client_probe(host: str, port: int,
                             header_timeout_s: float) -> None:
    """Play a slowloris submit; the server must answer a typed 408.

    Sends a partial request head and then stalls.  Within the server's
    header timeout (plus slack) the connection must come back with a
    408 — or be closed outright — never sit open.
    """

    async def _go() -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(b"POST /jobs HTTP/1.1\r\nHost: slow")
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        status_line = raw.split(b"\r\n", 1)[0]
        if raw and b" 408 " not in status_line:
            raise RuntimeError(
                f"slow client got {status_line!r}, expected 408 or close"
            )

    await asyncio.wait_for(_go(), header_timeout_s + 30.0)


async def _sse_disconnect_probe(host: str, port: int, job_id: str,
                                app) -> None:
    """Open the job's SSE stream, drop it abruptly, assert release.

    The server must notice the dead consumer and release the tailing
    task within one poll interval (observed via the ``sse_streams``
    gauge on /healthz) instead of pinning it for the job's runtime.
    """

    async def _go() -> None:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
            "Host: campaign\r\n\r\n".encode()
        )
        await writer.drain()
        await reader.read(256)  # response head; the stream is now live
        writer.transport.abort()  # RST, not FIN: the rudest disconnect
        deadline = asyncio.get_event_loop().time() + 10.0
        while asyncio.get_event_loop().time() < deadline:
            if app._sse_active == 0:
                return
            await asyncio.sleep(app.poll_interval)
        raise RuntimeError(
            "server did not release the SSE stream after disconnect"
        )

    await asyncio.wait_for(_go(), RESILIENCE_STEP_TIMEOUT_S)


async def _poll_terminal(host: str, port: int, job_id: str) -> dict:
    """Poll /jobs/{id} until the record reaches done/failed."""

    async def _go() -> dict:
        while True:
            _status, body = await _http_json(host, port,
                                             "GET", f"/jobs/{job_id}")
            if body is not None and body.get("state") in ("done", "failed"):
                return body
            await asyncio.sleep(0.1)

    return await asyncio.wait_for(_go(), RESILIENCE_JOB_TIMEOUT_S)


def _typed_error_text(error: Optional[str]) -> bool:
    """Whether a failed record's error string names a typed failure."""
    if not error:
        return False
    typed_names = tuple(t.__name__ for t in TYPED_ERRORS) + (
        "TaskCancelled", "AlignmentError", "ResourceLimitError",
    )
    return error.startswith(typed_names)


async def _resilience_seed(seed: int, fasta: str, spec: JobSpec,
                           n_workers: int, rundir: str,
                           baseline_canonical: str) -> ChaosRunResult:
    from ..serve.app import ServeApp
    from ..serve.jobstore import JobService

    plan = default_resilience_plan(seed)
    fired: Dict[str, int] = {}
    try:
        with inject(plan) as injector:
            try:
                service = JobService(
                    rundir, n_workers=n_workers,
                    cluster=_resilience_cluster_config(n_workers),
                    clock=_make_clock(),
                )
                app = ServeApp(service, port=0, poll_interval=0.05,
                               header_timeout_s=0.5, body_timeout_s=5.0,
                               drain_grace_s=20.0)
                await app.start()
                try:
                    host, port = app.host, app.port
                    # Scenario draws: whether this seed plays each
                    # hostile-client behaviour (one draw per seed, so
                    # the schedule is independent of request count).
                    slow = injector.fire(SERVE_SLOW_CLIENT,
                                         key=f"seed{seed}")
                    sse_drop = injector.fire(SERVE_CLIENT_DISCONNECT_MID_SSE,
                                             key=f"seed{seed}")
                    if slow:
                        await _slow_client_probe(host, port,
                                                 app.header_timeout_s)
                    status, body = await _http_json(
                        host, port, "POST", "/jobs",
                        {"alignment": fasta,
                         "model": {"n_inferences": spec.n_inferences,
                                   "n_bootstraps": spec.n_bootstraps,
                                   "seed": spec.seed,
                                   "batch_size": spec.batch_size},
                         "client": "campaign"},
                    )
                    if status not in (200, 201):
                        raise RuntimeError(
                            f"submit rejected: {status} {body}")
                    job_id = body["job_id"]
                    if sse_drop:
                        await _sse_disconnect_probe(host, port, job_id,
                                                    app)
                    record = await _poll_terminal(host, port, job_id)
                    if record["state"] == "failed":
                        raise RuntimeError(
                            f"job failed: {record.get('error')}")
                    _status, result = await _http_json(
                        host, port, "GET", f"/jobs/{job_id}/result")
                finally:
                    await asyncio.wait_for(app.stop(),
                                           app.drain_grace_s + 30.0)
                # Worker faults fire in forked children (their injector
                # counters die with them); observe them from the journal.
                journal = service.store.journal_path(job_id)
                if os.path.exists(journal):
                    state = replay(journal)
                    for death in state.worker_deaths:
                        reason = str(death.get("reason"))
                        key = f"observed.worker_{reason}"
                        fired[key] = fired.get(key, 0) + 1
            finally:
                for site, count in injector.fired.items():
                    fired[site] = fired.get(site, 0) + count
        if _canonical_result(result) == baseline_canonical:
            classification = SURVIVED_IDENTICAL
        elif result is not None and result.get("degraded"):
            classification = SURVIVED_DEGRADED
        else:
            classification = SILENT_CORRUPTION
        return ChaosRunResult(
            seed=seed, classification=classification,
            log_likelihood=(result or {}).get("best_log_likelihood"),
            fired=fired,
        )
    except asyncio.TimeoutError:
        return ChaosRunResult(
            seed=seed, classification=UNTYPED_FAILURE, fired=fired,
            error="Hang: step watchdog expired",
        )
    except TYPED_ERRORS as exc:
        return ChaosRunResult(
            seed=seed, classification=TYPED_FAILURE, fired=fired,
            error=f"{type(exc).__name__}: {exc}",
        )
    except RuntimeError as exc:
        # A failed job record carries its (string-typed) error; honour
        # the typed/untyped split it encodes.
        failed_typed = str(exc).startswith("job failed: ") and \
            _typed_error_text(str(exc)[len("job failed: "):])
        return ChaosRunResult(
            seed=seed,
            classification=TYPED_FAILURE if failed_typed
            else UNTYPED_FAILURE,
            fired=fired, error=f"{type(exc).__name__}: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 — the untyped-failure gate
        return ChaosRunResult(
            seed=seed, classification=UNTYPED_FAILURE, fired=fired,
            error=f"{type(exc).__name__}: {exc}",
        )


def run_resilience_campaign(
    n_seeds: int = 15,
    n_workers: int = 2,
    workdir: Optional[str] = None,
    start_seed: int = 0,
    fasta: Optional[str] = None,
    spec: Optional[JobSpec] = None,
) -> ChaosSurvivalReport:
    """Sweep hostile clients + wedged workers against a live server.

    Each seed boots a real :class:`~repro.serve.app.ServeApp` on an
    ephemeral port over a fresh store root and, per
    :func:`~repro.chaos.plan.default_resilience_plan`, plays a
    slowloris submit (expects a typed 408), drops an SSE stream mid-job
    (expects release within one poll interval), and lets
    ``cluster.worker_stall`` / ``cluster.worker_oom`` fire inside the
    forked workers (expects the task timeout / RSS watchdog to journal
    and requeue).  Every step runs under its own watchdog: a hang is an
    automatic campaign failure.  Survival requires the final result to
    be byte-identical to the fault-free baseline.
    """
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-resilience-")
    if fasta is None:
        fasta = _serve_workload()
    if spec is None:
        spec = _resilience_spec()
    baseline, _restarts, _svc = _serve_run_to_completion(
        os.path.join(workdir, "baseline"), fasta, spec, n_workers,
        max_restarts=0,
    )
    baseline_canonical = _canonical_result(baseline)
    report = ChaosSurvivalReport(label=f"resilience:{n_workers}w")
    for seed in range(start_seed, start_seed + n_seeds):
        report.add(asyncio.run(_resilience_seed(
            seed, fasta, spec, n_workers,
            os.path.join(workdir, f"seed{seed:03d}"),
            baseline_canonical,
        )))
    return report
